package tree

import (
	"fmt"
	"strings"
)

// Per-key replica placement. The edge protocol decides where copies MAY
// live (a child can only hold a key its parent grants, and the
// allocation gate keeps copies on a contiguous root-to-leaf path); the
// placement table decides where they SHOULD: each station runs one of
// the paper's adaptive policies — the SWk sliding window, or the
// competitive T1m/T2m threshold schemes of section 7.1 — over the
// read/write traffic it actually observes for each key, and sheds
// (DropCopy) any copy the policy votes against. Placement is advisory:
// it only ever removes copies, so it shifts cost, never correctness.
//
// The table is packed as a struct-of-arrays: one map lookup resolves a
// key to a row, and a row is a 64-bit window word, a ring head, a
// counter, and one bit in a hold bitset — four parallel arrays that stay
// cache-resident at fleet-scale key counts, instead of one heap-
// allocated core.Window or core.T1 per (station, key). placement_test.go
// proves every transition bit-equivalent to the internal/core originals.

// PolicyKind selects the placement algorithm.
type PolicyKind uint8

const (
	// PolicyNone disables placement: the edge protocol alone decides.
	PolicyNone PolicyKind = iota
	// PolicySW holds a copy while reads hold the majority of the last K
	// observed requests (the paper's SWk, core.Window semantics).
	PolicySW
	// PolicyT1 holds a copy after K consecutive reads, until the next
	// write (the paper's T1m, core.T1 semantics; K is m).
	PolicyT1
	// PolicyT2 holds a copy until K consecutive writes, re-holding on
	// the next read (the paper's T2m, core.T2 semantics; K is m).
	PolicyT2
)

// Policy is a placement policy choice: the algorithm and its parameter
// (window size for SW, threshold m for T1/T2).
type Policy struct {
	Kind PolicyKind
	K    int
}

// ParsePolicy parses a placement spec: "none", "SWk", "T1:m" or "T2:m".
func ParsePolicy(s string) (Policy, error) {
	if s == "" || s == "none" {
		return Policy{Kind: PolicyNone}, nil
	}
	var k int
	switch {
	case parseInt(s, "SW%d", &k):
		return checkPolicy(Policy{Kind: PolicySW, K: k})
	case parseInt(s, "T1:%d", &k):
		return checkPolicy(Policy{Kind: PolicyT1, K: k})
	case parseInt(s, "T2:%d", &k):
		return checkPolicy(Policy{Kind: PolicyT2, K: k})
	}
	return Policy{}, fmt.Errorf("tree: bad placement %q (want none, SWk, T1:m or T2:m)", s)
}

func parseInt(s, format string, k *int) bool {
	n, err := fmt.Sscanf(s, format, k)
	return err == nil && n == 1 && fmt.Sprintf(format, *k) == s
}

func checkPolicy(p Policy) (Policy, error) {
	if err := p.Validate(); err != nil {
		return Policy{}, err
	}
	return p, nil
}

func (p Policy) String() string {
	switch p.Kind {
	case PolicyNone:
		return "none"
	case PolicySW:
		return fmt.Sprintf("SW%d", p.K)
	case PolicyT1:
		return fmt.Sprintf("T1(%d)", p.K)
	case PolicyT2:
		return fmt.Sprintf("T2(%d)", p.K)
	}
	return "?"
}

// Validate checks the parameter range. SW windows must fit the packed
// 64-bit row; the paper's experiments stop at k=9, so 64 is generous.
func (p Policy) Validate() error {
	switch p.Kind {
	case PolicyNone:
		return nil
	case PolicySW:
		if p.K < 1 || p.K > 64 {
			return fmt.Errorf("tree: SW placement window %d outside [1, 64]", p.K)
		}
		return nil
	case PolicyT1, PolicyT2:
		if p.K < 1 {
			return fmt.Errorf("tree: T* placement threshold %d must be positive", p.K)
		}
		return nil
	}
	return fmt.Errorf("tree: unknown placement kind %d", p.Kind)
}

// Table is the packed per-key placement state for one station. Not
// goroutine-safe; the owning station serializes access.
type Table struct {
	pol Policy
	ids map[string]uint32

	// Parallel per-row arrays. For SW: bits is the window ring (bit set =
	// write; K low bits in use), head the ring index, cnt the write
	// count. For T1: cnt counts consecutive reads while not holding. For
	// T2: cnt counts consecutive writes while holding.
	bits []uint64
	head []uint8
	cnt  []uint32

	// hold is a bitset over rows: whether the policy currently votes for
	// a copy at this station.
	hold []uint64
}

// NewTable returns an empty table for the given policy. Panics on an
// invalid policy; PolicyNone yields a table that always votes to hold
// (placement disabled — the edge protocol alone decides).
func NewTable(p Policy) *Table {
	if err := p.Validate(); err != nil {
		panic(err.Error())
	}
	return &Table{pol: p, ids: make(map[string]uint32)}
}

// Len returns the number of tracked keys.
func (t *Table) Len() int { return len(t.ids) }

// Policy returns the table's policy.
func (t *Table) Policy() Policy { return t.pol }

// row resolves key to its row, creating it in the policy's initial
// state: SW starts all-writes (one-copy scheme, like a freshly attached
// MC), T1 starts not holding, T2 starts holding.
func (t *Table) row(key string) uint32 {
	r, ok := t.ids[key]
	if ok {
		return r
	}
	r = uint32(len(t.bits))
	// The map retains its key; clone in case the caller's aliases
	// transport memory.
	t.ids[strings.Clone(key)] = r
	var w uint64
	var c uint32
	if t.pol.Kind == PolicySW {
		w = (uint64(1) << uint(t.pol.K)) - 1 // all writes
		c = uint32(t.pol.K)
	}
	t.bits = append(t.bits, w)
	t.head = append(t.head, 0)
	t.cnt = append(t.cnt, c)
	if int(r)>>6 >= len(t.hold) {
		t.hold = append(t.hold, 0)
	}
	if t.pol.Kind == PolicyT2 {
		t.setHold(r, true)
	}
	return r
}

func (t *Table) holds(r uint32) bool {
	return t.hold[r>>6]&(1<<(r&63)) != 0
}

func (t *Table) setHold(r uint32, on bool) {
	if on {
		t.hold[r>>6] |= 1 << (r & 63)
	} else {
		t.hold[r>>6] &^= 1 << (r & 63)
	}
}

// Holds reports whether the policy currently votes for a copy of key at
// this station. Untracked keys answer the policy's initial state without
// allocating a row.
func (t *Table) Holds(key string) bool {
	if t.pol.Kind == PolicyNone {
		return true
	}
	if r, ok := t.ids[key]; ok {
		return t.holds(r)
	}
	return t.pol.Kind == PolicyT2
}

// OnRead records a read of key observed at this station and returns the
// policy's (possibly changed) vote.
func (t *Table) OnRead(key string) bool {
	if t.pol.Kind == PolicyNone {
		return true
	}
	r := t.row(key)
	switch t.pol.Kind {
	case PolicySW:
		t.push(r, false)
		t.setHold(r, t.readMajority(r))
	case PolicyT1:
		if !t.holds(r) {
			t.cnt[r]++
			if t.cnt[r] == uint32(t.pol.K) {
				t.setHold(r, true)
				t.cnt[r] = 0
			}
		}
		// Reads while holding keep the copy; nothing to count.
	case PolicyT2:
		if t.holds(r) {
			t.cnt[r] = 0 // a read breaks the consecutive-write run
		} else {
			t.setHold(r, true) // first read of the one-copy phase re-holds
		}
	}
	return t.holds(r)
}

// OnWrite records a write of key observed at this station and returns
// the policy's (possibly changed) vote.
func (t *Table) OnWrite(key string) bool {
	if t.pol.Kind == PolicyNone {
		return true
	}
	r := t.row(key)
	switch t.pol.Kind {
	case PolicySW:
		t.push(r, true)
		t.setHold(r, t.readMajority(r))
	case PolicyT1:
		if t.holds(r) {
			t.setHold(r, false) // any write ends the two-copies phase
		}
		t.cnt[r] = 0
	case PolicyT2:
		if t.holds(r) {
			t.cnt[r]++
			if t.cnt[r] == uint32(t.pol.K) {
				t.setHold(r, false)
				t.cnt[r] = 0
			}
		}
		// Writes while not holding are free; nothing to count.
	}
	return t.holds(r)
}

// push slides row r's SW window: drop the oldest bit, record isWrite as
// the newest, maintaining the write count exactly like core.Window.Push.
func (t *Table) push(r uint32, isWrite bool) {
	h := uint(t.head[r])
	old := t.bits[r]&(1<<h) != 0
	if old {
		t.cnt[r]--
	}
	if isWrite {
		t.bits[r] |= 1 << h
		t.cnt[r]++
	} else {
		t.bits[r] &^= 1 << h
	}
	h++
	if h == uint(t.pol.K) {
		h = 0
	}
	t.head[r] = uint8(h)
}

// readMajority mirrors core.Window.ReadMajority: reads strictly
// outnumber writes among the K tracked bits.
func (t *Table) readMajority(r uint32) bool {
	return uint32(t.pol.K)-t.cnt[r] > t.cnt[r]
}
