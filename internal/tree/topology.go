// Package tree generalises the hardened two-node MC/SC pair into the
// deployment shape the paper's discussion (section 8) points at: a
// rooted hierarchy of stationary support stations with mobile computers
// attached at the leaves. Every parent↔child edge of the tree runs the
// unchanged two-node protocol from internal/replica — a relay station is
// an SC toward its children and an MC toward its parent — so the depth-1
// tree IS the existing pair, wire for wire, and every deeper tree is a
// composition of independently-verified edges. Per-key replica placement
// along the root-to-leaf path is driven by the same SW/T1m/T2m policies
// the pair uses (placement.go); mobile handoff moves an MC between
// stations with the warm-resync and epoch-fencing machinery of the pair
// (tree.go).
package tree

import "fmt"

// Topology describes a rooted tree of n stations. Station 0 is the root
// (it owns the authoritative store); every other station i has parent
// Parent[i]. Mobile computers attach at any station, typically leaves.
type Topology struct {
	// Parent[i] is the parent station of station i; Parent[0] must be -1.
	Parent []int
}

// Chain returns a root-to-leaf chain of n stations: 0 ← 1 ← … ← n-1.
// A chain of depth d has d+1 stations.
func Chain(n int) Topology {
	p := make([]int, n)
	for i := range p {
		p[i] = i - 1
	}
	return Topology{Parent: p}
}

// Binary returns a complete binary tree of n stations in heap order:
// station i's parent is (i-1)/2.
func Binary(n int) Topology {
	p := make([]int, n)
	for i := range p {
		p[i] = (i - 1) / 2
	}
	if n > 0 {
		p[0] = -1
	}
	return Topology{Parent: p}
}

// N returns the number of stations.
func (t Topology) N() int { return len(t.Parent) }

// Validate checks that the description is a rooted tree: station 0 is
// the unique root, every parent index precedes its child (stations are
// listed in topological order), and there are no cycles by construction.
func (t Topology) Validate() error {
	if len(t.Parent) == 0 {
		return fmt.Errorf("tree: empty topology")
	}
	if t.Parent[0] != -1 {
		return fmt.Errorf("tree: station 0 must be the root (Parent[0] = %d, want -1)", t.Parent[0])
	}
	for i := 1; i < len(t.Parent); i++ {
		if t.Parent[i] < 0 || t.Parent[i] >= i {
			return fmt.Errorf("tree: station %d has parent %d; parents must be earlier stations", i, t.Parent[i])
		}
	}
	return nil
}

// Children returns each station's children, index == station.
func (t Topology) Children() [][]int {
	out := make([][]int, len(t.Parent))
	for i := 1; i < len(t.Parent); i++ {
		p := t.Parent[i]
		out[p] = append(out[p], i)
	}
	return out
}

// Leaves returns the stations with no children, in order.
func (t Topology) Leaves() []int {
	hasChild := make([]bool, len(t.Parent))
	for i := 1; i < len(t.Parent); i++ {
		hasChild[t.Parent[i]] = true
	}
	var out []int
	for i, h := range hasChild {
		if !h {
			out = append(out, i)
		}
	}
	return out
}

// Depth returns the number of edges from station i to the root.
func (t Topology) Depth(i int) int {
	d := 0
	for t.Parent[i] != -1 {
		i = t.Parent[i]
		d++
	}
	return d
}

// Path returns the stations from i up to the root, inclusive on both
// ends: [i, parent(i), …, 0].
func (t Topology) Path(i int) []int {
	var out []int
	for {
		out = append(out, i)
		if t.Parent[i] == -1 {
			return out
		}
		i = t.Parent[i]
	}
}

// CommonAncestor returns the deepest station that lies on both a's and
// b's root paths — the station through which state migrates on a
// handoff from a to b.
func (t Topology) CommonAncestor(a, b int) int {
	da, db := t.Depth(a), t.Depth(b)
	for da > db {
		a = t.Parent[a]
		da--
	}
	for db > da {
		b = t.Parent[b]
		db--
	}
	for a != b {
		a = t.Parent[a]
		b = t.Parent[b]
	}
	return a
}
