package tree

import (
	"bytes"
	"flag"
	"fmt"
	"strings"
	"testing"
	"time"

	"mobirep/internal/db"
	"mobirep/internal/replica"
	"mobirep/internal/stats"
	"mobirep/internal/transport"
)

// The tree conformance sweep extends the two-node explorer's method to
// whole hierarchies: seeded random schedules of reads, root writes,
// handoffs, reconnects, partitions, relay crashes, and root power-cuts
// run over chains and small trees with every edge behind manual chaos.
// Where the two-node explorer checks each frame against a lock-step
// model, the tree sweep is invariant-based — the composition argument
// (every edge IS the verified two-node protocol) covers the frames, and
// the sweep checks what composition alone cannot prove:
//
//   - no invented values: every read returns exactly the payload the
//     root committed for that version;
//   - no lost acked writes: the root (sync=always) never loses a
//     version, and after repair every MC converges to it exactly;
//   - no unflagged staleness: reads never run ahead of the root and
//     never step backwards per MC per key (floors survive handoffs; a
//     cold arrival resets them, which is the flag);
//   - bounded recovery: every read, resync, and handoff resolves within
//     a fixed pump budget once links are repaired.
//
// A failure report carries the seed and the op trace; replay with
//
//	go test ./internal/tree -run TestTreeConformanceSweep -tree.seed=<seed> -v
var (
	treeSchedules = flag.Int("tree.schedules", 150,
		"number of seeded fault schedules the tree conformance sweep runs")
	treeSeed = flag.Uint64("tree.seed", 0,
		"replay a single tree schedule verbosely (0 = explore)")
	treeShards = flag.Int("tree.shards", 0,
		"station shard count for tree conformance (power of two); 0 cycles 1/8 by seed")
)

func valueFor(key string, version uint64) []byte {
	if version == 0 {
		return nil
	}
	return []byte(fmt.Sprintf("%s#%d", key, version))
}

// treeEdge is one chaos-wrapped edge: the parent's outbound queue and
// the child's outbound queue.
type treeEdge struct {
	p2c, c2p *transport.Chaos
}

func (e *treeEdge) close() {
	e.p2c.Close()
	e.c2p.Close()
}

type treeMC struct {
	idx  int
	mc   *MC
	edge *treeEdge
	// last is the per-key monotonicity floor this MC's reads must respect;
	// reset only on a cold arrival (the protocol's advertised flag).
	last map[string]uint64
}

type treeConf struct {
	t       *testing.T
	seed    uint64
	rng     *stats.RNG
	verbose bool

	mode   replica.Mode
	place  Policy
	chaos  transport.Config
	shards int

	topo  Topology
	tr    *Tree
	cfs   *db.CrashFS
	store *db.Store

	edges   []*treeEdge // station i's parent edge; nil for the root
	mcs     []*treeMC
	keys    []string
	written map[string]uint64 // last acked root version per key
	trace   []string
}

func (h *treeConf) tracef(format string, args ...any) {
	line := fmt.Sprintf(format, args...)
	h.trace = append(h.trace, line)
	if h.verbose {
		h.t.Logf("seed %d: %s", h.seed, line)
	}
}

func (h *treeConf) fail(format string, args ...any) error {
	return fmt.Errorf("%s\n  trace:\n    %s",
		fmt.Sprintf(format, args...), strings.Join(h.trace, "\n    "))
}

// connectCfg returns a LinkFactory that builds chaos edges with the
// given fault profile, retiring the child's previous edge.
func (h *treeConf) connectCfg(cfg transport.Config) LinkFactory {
	return func(child, parent int) (transport.Link, transport.Link, error) {
		c := cfg
		c.Seed = h.rng.Uint64()
		p2c, c2p, err := transport.NewChaosPair(c)
		if err != nil {
			return nil, nil, err
		}
		if old := h.edges[child]; old != nil {
			old.close()
		}
		h.edges[child] = &treeEdge{p2c: p2c, c2p: c2p}
		return c2p, p2c, nil
	}
}

func (h *treeConf) connect(child, parent int) (transport.Link, transport.Link, error) {
	return h.connectCfg(h.chaos)(child, parent)
}

func (h *treeConf) newMCEdge(cfg transport.Config) (mcEnd, stEnd transport.Link, e *treeEdge, err error) {
	cfg.Seed = h.rng.Uint64()
	p2c, c2p, err := transport.NewChaosPair(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	return c2p, p2c, &treeEdge{p2c: p2c, c2p: c2p}, nil
}

func newTreeConf(t *testing.T, seed uint64, shards int, verbose bool) (*treeConf, error) {
	rng := stats.NewRNG(seed)
	modes := []replica.Mode{replica.SW(1), replica.SW(3), replica.SW(5), replica.Static1(), replica.Static2()}
	mode := modes[rng.Intn(len(modes))]
	places := []Policy{
		{Kind: PolicyNone}, {Kind: PolicyNone},
		{Kind: PolicySW, K: 9}, {Kind: PolicyT1, K: 2}, {Kind: PolicyT2, K: 2},
	}
	place := places[rng.Intn(len(places))]
	topos := []Topology{Chain(2), Chain(3), Binary(3), Binary(7)}
	topo := topos[rng.Intn(len(topos))]
	drops := []float64{0, 0.05, 0.15}
	dups := []float64{0, 0.05, 0.15}
	reorders := []float64{0, 0.1, 0.3}
	cfg := transport.Config{
		Drop:    drops[rng.Intn(len(drops))],
		Dup:     dups[rng.Intn(len(dups))],
		Reorder: reorders[rng.Intn(len(reorders))],
		Manual:  true,
	}
	if shards == 0 {
		shards = []int{1, 8}[seed%2]
	}
	// The root is durable with sync=always: acknowledged writes survive
	// any power cut, so floors stay satisfiable across restarts and the
	// sweep can demand exact convergence.
	cfs := db.NewCrashFS()
	store, err := db.OpenWith(db.Options{Path: "root.log", Sync: db.SyncAlways, FS: cfs})
	if err != nil {
		return nil, err
	}
	h := &treeConf{
		t: t, seed: seed, rng: rng, verbose: verbose,
		mode: mode, place: place, chaos: cfg, shards: shards,
		topo: topo, cfs: cfs, store: store,
		edges:   make([]*treeEdge, topo.N()),
		keys:    []string{"a", "b", "c"},
		written: map[string]uint64{},
	}
	h.tracef("mode=%v place=%v topo=%v drop=%v dup=%v reorder=%v shards=%d",
		mode, place, topo.Parent, cfg.Drop, cfg.Dup, cfg.Reorder, shards)
	h.tr, err = Build(topo, store, mode, shards, place, h.connect)
	if err != nil {
		return nil, err
	}
	for i := 0; i < 2; i++ {
		station := 1 + rng.Intn(topo.N()-1)
		mcEnd, stEnd, e, err := h.newMCEdge(h.chaos)
		if err != nil {
			return nil, err
		}
		mc, err := h.tr.AttachMC(station, mcEnd, stEnd)
		if err != nil {
			return nil, err
		}
		h.mcs = append(h.mcs, &treeMC{idx: i, mc: mc, edge: e, last: map[string]uint64{}})
		h.tracef("mc%d at station %d", i, station)
	}
	return h, nil
}

func (h *treeConf) randKey() string { return h.keys[h.rng.Intn(len(h.keys))] }
func (h *treeConf) randMC() *treeMC { return h.mcs[h.rng.Intn(len(h.mcs))] }
func (h *treeConf) randRelay() int  { return 1 + h.rng.Intn(h.topo.N()-1) }

func (h *treeConf) queues() []*transport.Chaos {
	var qs []*transport.Chaos
	for _, e := range h.edges {
		if e != nil {
			qs = append(qs, e.p2c, e.c2p)
		}
	}
	for _, m := range h.mcs {
		qs = append(qs, m.edge.p2c, m.edge.c2p)
	}
	return qs
}

// pumpOne steps one frame on a randomly chosen non-empty queue.
func (h *treeConf) pumpOne() bool {
	var ready []*transport.Chaos
	for _, q := range h.queues() {
		if q.Pending() > 0 {
			ready = append(ready, q)
		}
	}
	if len(ready) == 0 {
		return false
	}
	ready[h.rng.Intn(len(ready))].Step()
	return true
}

func (h *treeConf) settle(budget int) {
	for i := 0; i < budget; i++ {
		if !h.pumpOne() {
			return
		}
	}
}

// pumpResync pumps until the client comes back online (or fences), or
// the traffic dries out / the budget runs dry (false: the resync was
// lost to chaos and needs a fresh attempt).
func (h *treeConf) pumpResync(cli *replica.Client, done <-chan struct{}, budget int) bool {
	for i := 0; i < budget; i++ {
		if cli.EpochFenced() || !cli.Offline() {
			return true
		}
		select {
		case <-done:
			return true
		default:
		}
		if !h.pumpOne() {
			return false
		}
	}
	return false
}

func (h *treeConf) doWrite() error {
	key := h.randKey()
	next := h.written[key] + 1
	it, err := h.tr.Stations[0].Server().Write(key, valueFor(key, next))
	if err != nil {
		return h.fail("root write %s: %v", key, err)
	}
	if it.Version != next {
		return h.fail("root write %s: committed v%d, want v%d", key, it.Version, next)
	}
	h.written[key] = next
	h.tracef("write %s v%d", key, next)
	return nil
}

// doRead issues a read at an MC and pumps it to resolution, repairing
// links when chaos strands it. Every resolved read must satisfy the
// sweep's invariants.
func (h *treeConf) doRead(m *treeMC) error {
	key := h.randKey()
	h.tracef("mc%d read %s", m.idx, key)
	for attempt := 0; attempt < 10; attempt++ {
		it, resolved, err := h.runRead(m, key)
		if err != nil {
			return err
		}
		if !resolved {
			continue
		}
		if it.Version > h.written[key] {
			return h.fail("mc%d read %s: v%d ahead of last acked v%d", m.idx, key, it.Version, h.written[key])
		}
		if !bytes.Equal(it.Value, valueFor(key, it.Version)) {
			return h.fail("mc%d read %s: value %q does not match v%d", m.idx, key, it.Value, it.Version)
		}
		if it.Version < m.last[key] {
			return h.fail("mc%d read %s: v%d went back in time after v%d", m.idx, key, it.Version, m.last[key])
		}
		m.last[key] = it.Version
		h.tracef("mc%d read %s = v%d", m.idx, key, it.Version)
		return nil
	}
	return h.fail("mc%d read %s never resolved", m.idx, key)
}

func (h *treeConf) runRead(m *treeMC, key string) (db.Item, bool, error) {
	type result struct {
		it  db.Item
		err error
	}
	ch := make(chan result, 1)
	go func() {
		it, err := m.mc.Client.Read(key)
		ch <- result{it, err}
	}()
	stuck := 0
	for steps := 0; steps < 8000; steps++ {
		select {
		case r := <-ch:
			if r.err != nil {
				// Offline/severed: the mobile user cycles the connection.
				h.tracef("mc%d read %s failed (%v); reconnecting", m.idx, key, r.err)
				return db.Item{}, false, h.handoffTo(m, m.mc.Station(), h.chaos)
			}
			return r.it, true, nil
		default:
		}
		if h.pumpOne() {
			stuck = 0
			continue
		}
		// Quiescent: give the read goroutine a beat to resolve or settle
		// into blocked, then count it toward stranded.
		time.Sleep(2 * time.Millisecond)
		if stuck++; stuck < 3 {
			continue
		}
		// The request (or a relay's upstream fetch) was lost to chaos and
		// nothing will ever answer. Cycle every edge: suspending the MC
		// fails the blocked read, and the relay reconnects fail any
		// stranded fetch continuations upstream.
		h.tracef("mc%d read %s stranded; cycling every edge", m.idx, key)
		m.mc.Client.Suspend()
		select {
		case <-ch:
		case <-time.After(5 * time.Second):
			return db.Item{}, false, h.fail("mc%d read %s still blocked after suspend", m.idx, key)
		}
		if err := h.repairAll(); err != nil {
			return db.Item{}, false, err
		}
		return db.Item{}, false, h.handoffTo(m, m.mc.Station(), h.chaos)
	}
	return db.Item{}, false, h.fail("mc%d read %s exceeded the pump budget", m.idx, key)
}

// handoffTo moves (or warm-reconnects, when to == current) an MC over a
// fresh edge with the given fault profile, retrying lost resyncs.
func (h *treeConf) handoffTo(m *treeMC, to int, cfg transport.Config) error {
	for attempt := 0; attempt < 25; attempt++ {
		if attempt > 0 && attempt%5 == 0 {
			// Persistent failures usually mean a relay edge is wedged too.
			if err := h.repairAll(); err != nil {
				return err
			}
		}
		mcEnd, stEnd, e, err := h.newMCEdge(cfg)
		if err != nil {
			return err
		}
		m.edge.close()
		m.edge = e
		done, err := m.mc.Handoff(to, mcEnd, stEnd)
		if err != nil {
			continue
		}
		if !h.pumpResync(m.mc.Client, done, 4000) {
			continue
		}
		if !m.mc.FinishHandoff(mcEnd) {
			// Cold arrival: the advertised flag; monotonicity starts over.
			h.tracef("mc%d arrived cold at station %d", m.idx, to)
			m.last = map[string]uint64{}
		}
		if m.mc.Client.Offline() {
			continue
		}
		return nil
	}
	return h.fail("mc%d handoff to station %d never completed", m.idx, to)
}

func (h *treeConf) doHandoff(m *treeMC) error {
	to := h.randRelay()
	h.tracef("mc%d handoff %d -> %d", m.idx, m.mc.Station(), to)
	return h.handoffTo(m, to, h.chaos)
}

// repairEdgeWith cycles a relay's parent edge warm (cold after a fence),
// retrying resyncs the chaos eats.
func (h *treeConf) repairEdgeWith(i int, connect LinkFactory) error {
	cli := h.tr.Stations[i].Client()
	for attempt := 0; attempt < 25; attempt++ {
		done, err := h.tr.ReconnectEdge(i, connect)
		if err != nil {
			return h.fail("edge %d reconnect: %v", i, err)
		}
		if !h.pumpResync(cli, done, 4000) {
			continue
		}
		if cli.EpochFenced() {
			h.tracef("edge %d fenced; cold reattach", i)
			if err := h.tr.ColdReconnectEdge(i, connect); err != nil {
				return h.fail("edge %d cold reattach: %v", i, err)
			}
			return nil
		}
		if !cli.Offline() {
			return nil
		}
	}
	return h.fail("edge %d reconnect never completed", i)
}

func (h *treeConf) doEdgeReconnect() error {
	i := h.randRelay()
	h.tracef("edge %d warm reconnect", i)
	return h.repairEdgeWith(i, h.connect)
}

// repairAll cycles every relay edge top-down; parents first so a child's
// resync always finds a live upstream.
func (h *treeConf) repairAll() error {
	for i := 1; i < h.topo.N(); i++ {
		if err := h.repairEdgeWith(i, h.connect); err != nil {
			return err
		}
	}
	h.settle(8000)
	return nil
}

func (h *treeConf) doPartition() {
	qs := h.queues()
	n := 1 + h.rng.Intn(3)
	qs[h.rng.Intn(len(qs))].Partition(n)
	h.tracef("partition swallowing next %d frames", n)
}

// doRelayCrash loses a relay wholesale: fresh mirror, fresh placement,
// fresh parent edge. Its children and MCs reattach warm; the fresh relay
// revokes every copy it cannot vouch for and refetches on demand.
func (h *treeConf) doRelayCrash() error {
	i := h.randRelay()
	h.tracef("relay %d crash", i)
	if _, err := h.tr.ReplaceRelay(i, h.connect); err != nil {
		return h.fail("replace relay %d: %v", i, err)
	}
	for c := i + 1; c < h.topo.N(); c++ {
		if h.topo.Parent[c] == i {
			if err := h.repairEdgeWith(c, h.connect); err != nil {
				return err
			}
		}
	}
	for _, m := range h.mcs {
		if m.mc.Station() == i {
			if err := h.handoffTo(m, i, h.chaos); err != nil {
				return err
			}
		}
	}
	return nil
}

// doRootCrash power-cuts the root and restarts it. sync=always means no
// acked write may be missing from the reopened store; the bumped epoch
// fences the direct children on reattach and the fence cascades cold
// through the whole tree.
func (h *treeConf) doRootCrash() error {
	cut := h.rng.Intn(h.cfs.Ops() + 1)
	h.tracef("root crash (cut %d/%d) + restart", cut, h.cfs.Ops())
	h.cfs.Kill(cut)
	store, err := db.OpenWith(db.Options{Path: "root.log", Sync: db.SyncAlways, FS: h.cfs})
	if err != nil {
		return h.fail("reopen root store: %v", err)
	}
	for k, v := range h.written {
		it, _ := store.Get(k)
		if it.Version != v {
			return h.fail("root lost acked write %s v%d across the crash (has v%d)", k, v, it.Version)
		}
	}
	h.store = store
	root, err := NewRoot(store, h.mode, h.shards)
	if err != nil {
		return h.fail("restart root: %v", err)
	}
	h.tr.Stations[0] = root
	h.tracef("root restarted: epoch=%d", store.Epoch())
	for c := 1; c < h.topo.N(); c++ {
		if h.topo.Parent[c] == 0 {
			if err := h.repairEdgeWith(c, h.connect); err != nil {
				return err
			}
		}
	}
	return nil
}

// finalCheck repairs every link clean and demands exact convergence:
// each MC reads back precisely the last acked root version of every key.
func (h *treeConf) finalCheck() error {
	h.tracef("final: clean repair + exact convergence")
	clean := transport.Config{Manual: true}
	cleanConnect := h.connectCfg(clean)
	for i := 1; i < h.topo.N(); i++ {
		if err := h.repairEdgeWith(i, cleanConnect); err != nil {
			return err
		}
	}
	for _, m := range h.mcs {
		if err := h.handoffTo(m, m.mc.Station(), clean); err != nil {
			return err
		}
	}
	h.settle(20000)
	for _, m := range h.mcs {
		for _, key := range h.keys {
			want := h.written[key]
			var got db.Item
			resolved := false
			for attempt := 0; attempt < 5 && !resolved; attempt++ {
				var err error
				got, resolved, err = h.runRead(m, key)
				if err != nil {
					return err
				}
			}
			if !resolved {
				return h.fail("final: mc%d read %s never resolved over clean links", m.idx, key)
			}
			if got.Version != want || !bytes.Equal(got.Value, valueFor(key, want)) {
				return h.fail("final: mc%d %s = v%d %q, want v%d", m.idx, key, got.Version, got.Value, want)
			}
			// Drain the allocation traffic the read itself caused before
			// the next assertion.
			h.settle(20000)
		}
	}
	return nil
}

func (h *treeConf) run() error {
	nOps := 25 + h.rng.Intn(26)
	for op := 0; op < nOps; op++ {
		var err error
		switch die := h.rng.Intn(16); {
		case die < 6:
			err = h.doRead(h.randMC())
		case die < 10:
			err = h.doWrite()
		case die == 10:
			err = h.doHandoff(h.randMC())
		case die == 11:
			m := h.randMC()
			h.tracef("mc%d warm reconnect", m.idx)
			err = h.handoffTo(m, m.mc.Station(), h.chaos)
		case die == 12:
			err = h.doEdgeReconnect()
		case die == 13:
			h.doPartition()
		case die == 14:
			err = h.doRelayCrash()
		default:
			err = h.doRootCrash()
		}
		if err != nil {
			return err
		}
		if h.rng.Bernoulli(0.6) {
			for j := h.rng.Intn(6); j > 0; j-- {
				h.pumpOne()
			}
		}
	}
	return h.finalCheck()
}

func runTreeSchedule(t *testing.T, seed uint64, shards int, verbose bool) {
	t.Helper()
	h, err := newTreeConf(t, seed, shards, verbose)
	if err != nil {
		t.Fatalf("seed %d: harness: %v", seed, err)
	}
	if err := h.run(); err != nil {
		t.Fatalf("seed %d diverged: %v\nreplay: go test ./internal/tree -run 'TestTreeConformanceSweep$' -tree.seed=%d -tree.shards=%d -v",
			seed, err, seed, h.shards)
	}
}

func TestTreeConformanceSweep(t *testing.T) {
	if *treeSeed != 0 {
		runTreeSchedule(t, *treeSeed, *treeShards, true)
		return
	}
	for seed := uint64(1); seed <= uint64(*treeSchedules); seed++ {
		runTreeSchedule(t, seed, *treeShards, false)
	}
}

// Frozen regression seeds. 94 caught a real bug: a fetch request chaos
// ate left its continuation stranded at a relay, and because responses
// resolved only the head waiter, every resync retry completed its
// predecessor's dead fetch and stranded its own — the edge below a
// crashed relay could never finish reattaching (fixed by letting one
// response satisfy every satisfiable continuation). The others pin
// schedules whose op mixes exercise the deep-recovery paths: handoffs
// landing cold, relay crashes under SW and T* placement, root
// power-cuts fencing a 7-station tree.
var treeRegressionSeeds = []uint64{2, 7, 11, 19, 42, 94}

func TestTreeConformanceRegressions(t *testing.T) {
	for _, seed := range treeRegressionSeeds {
		for _, shards := range []int{1, 8} {
			runTreeSchedule(t, seed, shards, false)
		}
	}
}
