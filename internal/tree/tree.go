package tree

import (
	"fmt"

	"mobirep/internal/db"
	"mobirep/internal/replica"
	"mobirep/internal/transport"
)

// LinkFactory produces the transport for one parent↔child edge of the
// tree: the end the child's client speaks on and the end the parent's
// server speaks on. Harnesses wrap each end in chaos independently.
type LinkFactory func(child, parent int) (childEnd, parentEnd transport.Link, err error)

// Tree is an assembled in-process replica tree: the root over the
// authoritative store, relays over mirrors, every edge running the
// two-node protocol.
type Tree struct {
	Topo     Topology
	Stations []*Station
	mode     replica.Mode
	// sess[i] is station i's session at its parent's server (nil for the
	// root) — the server-side half of the parent edge, needed to detach
	// cleanly when the edge is cycled or the relay is replaced.
	sess []*replica.Session
}

// Build assembles the tree described by topo: station 0 becomes the
// root over store, every other station a relay with the given placement
// policy, connected to its parent over links from connect. The client
// end is wired before the parent attach so the attach greeting finds a
// live handler.
func Build(topo Topology, store *db.Store, mode replica.Mode, shards int, placement Policy, connect LinkFactory) (*Tree, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	root, err := NewRoot(store, mode, shards)
	if err != nil {
		return nil, err
	}
	tr := &Tree{
		Topo:     topo,
		Stations: make([]*Station, topo.N()),
		mode:     mode,
		sess:     make([]*replica.Session, topo.N()),
	}
	tr.Stations[0] = root
	for i := 1; i < topo.N(); i++ {
		st, err := NewRelay(i, mode, shards, placement)
		if err != nil {
			return nil, err
		}
		tr.Stations[i] = st
		if err := tr.connectEdge(st, topo.Parent[i], connect); err != nil {
			return nil, err
		}
	}
	return tr, nil
}

func (tr *Tree) connectEdge(st *Station, parent int, connect LinkFactory) error {
	childEnd, parentEnd, err := connect(st.idx, parent)
	if err != nil {
		return err
	}
	if err := st.ConnectParent(childEnd); err != nil {
		return err
	}
	tr.sess[st.idx] = tr.Stations[parent].srv.Attach(parentEnd)
	return nil
}

// ParentSession returns station i's session at its parent's server (nil
// for the root).
func (tr *Tree) ParentSession(i int) *replica.Session { return tr.sess[i] }

// ReconnectEdge cycles station i's parent edge warm: the old session and
// links are abandoned (in-flight frames die with them), a fresh edge
// from connect replaces them, and the relay resumes with a warm resync —
// exactly the mobile client's reconnect dance, one tree level up. The
// returned channel closes when the resync completes; if the resync
// surfaces an epoch fence, follow with ColdReconnectEdge.
func (tr *Tree) ReconnectEdge(i int, connect LinkFactory) (<-chan struct{}, error) {
	if i <= 0 || i >= tr.Topo.N() {
		return nil, fmt.Errorf("tree: station %d has no parent edge", i)
	}
	st := tr.Stations[i]
	cli := st.Client()
	cli.Suspend()
	tr.sess[i].Detach()
	childEnd, parentEnd, err := connect(i, tr.Topo.Parent[i])
	if err != nil {
		return nil, err
	}
	tr.sess[i] = tr.Stations[tr.Topo.Parent[i]].srv.Attach(parentEnd)
	return cli.ResumeResync(childEnd)
}

// ColdReconnectEdge cycles station i's parent edge cold: the relay
// reattaches from scratch (its warm parent-face state was dropped by the
// fence that demanded this).
func (tr *Tree) ColdReconnectEdge(i int, connect LinkFactory) error {
	if i <= 0 || i >= tr.Topo.N() {
		return fmt.Errorf("tree: station %d has no parent edge", i)
	}
	st := tr.Stations[i]
	cli := st.Client()
	cli.Suspend()
	tr.sess[i].Detach()
	childEnd, parentEnd, err := connect(i, tr.Topo.Parent[i])
	if err != nil {
		return err
	}
	tr.sess[i] = tr.Stations[tr.Topo.Parent[i]].srv.Attach(parentEnd)
	cli.Reattach(childEnd)
	return nil
}

// ReplaceRelay models a relay crash: station i is rebuilt from scratch
// (cold mirror, empty placement) and rewired to its parent over a fresh
// edge from connect. The old station's children are NOT migrated — they
// must reattach (warm resync) to the new station's server, which will
// revoke every copy the fresh relay cannot vouch for. Calling this for
// the root is an error; root restarts go through the store's own
// crash/recovery path instead.
func (tr *Tree) ReplaceRelay(i int, connect LinkFactory) (*Station, error) {
	if i <= 0 || i >= tr.Topo.N() {
		return nil, fmt.Errorf("tree: station %d is not a relay", i)
	}
	old := tr.Stations[i]
	if cli := old.Client(); cli != nil {
		cli.Disconnect()
	}
	tr.sess[i].Detach()
	st, err := NewRelay(i, tr.mode, old.srv.Shards(), old.Placement())
	if err != nil {
		return nil, err
	}
	if err := tr.connectEdge(st, tr.Topo.Parent[i], connect); err != nil {
		return nil, err
	}
	tr.Stations[i] = st
	return st, nil
}

// MC is a mobile computer attached to the tree: the ordinary two-node
// client, plus the bookkeeping Handoff needs to move it between
// stations.
type MC struct {
	tree    *Tree
	Client  *replica.Client
	station int
	sess    *replica.Session
}

// AttachMC attaches a new mobile computer at station over the given
// link ends. Floor tracking is enabled: across handoffs the MC's reads
// stay per-key monotone no matter how warm the station it lands on is.
func (tr *Tree) AttachMC(station int, mcEnd, stEnd transport.Link) (*MC, error) {
	if station < 0 || station >= tr.Topo.N() {
		return nil, fmt.Errorf("tree: no station %d", station)
	}
	cli, err := replica.NewClient(mcEnd, tr.mode)
	if err != nil {
		return nil, err
	}
	cli.SetTrackFloors(true)
	sess := tr.Stations[station].srv.Attach(stEnd)
	return &MC{tree: tr, Client: cli, station: station, sess: sess}, nil
}

// Station returns the station the MC is currently attached to.
func (m *MC) Station() int { return m.station }

// Session returns the MC's server-side session at its current station.
func (m *MC) Session() *replica.Session { return m.sess }

// Handoff moves the MC from its current station to station `to` over a
// fresh pair of link ends: suspend, detach the old session, attach at
// the target, warm resync. The MC's declared keys migrate through the
// topology's common ancestor — the target station's resync answers pull
// each key up its root path (at worst from the root itself), revalidate
// or re-ship, and the allocation gates re-grant copies only along the
// new root-to-leaf path.
//
// The returned channel closes when the resync completes (immediately if
// the MC held nothing). If the resync surfaces an epoch fence — the
// authority restarted while the MC was in motion — the handoff falls
// back to a cold reattach at the target and the channel is already
// closed. The caller owns pumping chaos links, if any.
func (m *MC) Handoff(to int, mcEnd, stEnd transport.Link) (<-chan struct{}, error) {
	if to < 0 || to >= m.tree.Topo.N() {
		return nil, fmt.Errorf("tree: no station %d", to)
	}
	m.Client.Suspend()
	m.sess.Detach()
	m.sess = m.tree.Stations[to].srv.Attach(stEnd)
	m.station = to
	done, err := m.Client.ResumeResync(mcEnd)
	if err != nil {
		// The new link died under us; treat as a cold arrival so the
		// caller can retry with another link.
		mHandoffsCold.Inc()
		return nil, err
	}
	mHandoffs.Inc()
	return done, nil
}

// FinishHandoff completes a handoff after its resync channel closed: if
// the resync surfaced an epoch fence (the root restarted mid-motion),
// the MC reattaches cold over the same link and starts over. Returns
// true if the arrival was warm.
func (m *MC) FinishHandoff(mcEnd transport.Link) bool {
	if !m.Client.EpochFenced() {
		return true
	}
	mHandoffsCold.Inc()
	m.Client.Reattach(mcEnd)
	return false
}
