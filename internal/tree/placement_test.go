package tree

import (
	"fmt"
	"testing"

	"mobirep/internal/core"
	"mobirep/internal/sched"
	"mobirep/internal/stats"
)

// The packed struct-of-arrays table must be transition-for-transition
// equivalent to the heap-allocated originals in internal/core: SW rows
// track core.Window (seeded all-writes, like a freshly attached MC) with
// hold = read majority, T1/T2 rows track core.T1/core.T2's HasCopy.
// Random op streams over several interleaved keys exercise ring
// wraparound, row growth, and the hold bitset across word boundaries.

func TestPlacementSWEquivalence(t *testing.T) {
	for _, k := range []int{1, 3, 5, 9, 17, 64} {
		t.Run(fmt.Sprintf("SW%d", k), func(t *testing.T) {
			rng := stats.NewRNG(uint64(1000 + k))
			tab := NewTable(Policy{Kind: PolicySW, K: k})
			keys := manyKeys(70) // spans two hold-bitset words
			ref := map[string]*core.Window{}
			for step := 0; step < 4000; step++ {
				key := keys[rng.Intn(len(keys))]
				w, ok := ref[key]
				if !ok {
					w = core.NewWindow(k, sched.Write)
					ref[key] = w
				}
				var got bool
				if rng.Intn(2) == 0 {
					w.Push(sched.Read)
					got = tab.OnRead(key)
				} else {
					w.Push(sched.Write)
					got = tab.OnWrite(key)
				}
				if want := w.ReadMajority(); got != want {
					t.Fatalf("step %d key %s: table holds=%v, core.Window read-majority=%v (window %s)",
						step, key, got, want, w)
				}
				if tab.Holds(key) != got {
					t.Fatalf("step %d key %s: Holds disagrees with the On* return", step, key)
				}
			}
		})
	}
}

func TestPlacementTStarEquivalence(t *testing.T) {
	type refPolicy interface {
		Apply(op sched.Op) core.Step
		HasCopy() bool
	}
	for _, m := range []int{1, 2, 3, 7} {
		for _, kind := range []PolicyKind{PolicyT1, PolicyT2} {
			pol := Policy{Kind: kind, K: m}
			t.Run(pol.String(), func(t *testing.T) {
				rng := stats.NewRNG(uint64(2000 + m + int(kind)*100))
				tab := NewTable(pol)
				keys := manyKeys(70)
				ref := map[string]refPolicy{}
				for step := 0; step < 4000; step++ {
					key := keys[rng.Intn(len(keys))]
					p, ok := ref[key]
					if !ok {
						if kind == PolicyT1 {
							p = core.NewT1(m)
						} else {
							p = core.NewT2(m)
						}
						ref[key] = p
					}
					var got bool
					if rng.Intn(2) == 0 {
						p.Apply(sched.Read)
						got = tab.OnRead(key)
					} else {
						p.Apply(sched.Write)
						got = tab.OnWrite(key)
					}
					if want := p.HasCopy(); got != want {
						t.Fatalf("step %d key %s: table holds=%v, core %s has-copy=%v",
							step, key, got, pol, want)
					}
				}
			})
		}
	}
}

func TestPlacementInitialVotes(t *testing.T) {
	// Untracked keys answer the policy's initial state without allocating.
	sw := NewTable(Policy{Kind: PolicySW, K: 3})
	if sw.Holds("x") {
		t.Fatal("SW starts all-writes: must not vote to hold an untracked key")
	}
	t1 := NewTable(Policy{Kind: PolicyT1, K: 2})
	if t1.Holds("x") {
		t.Fatal("T1 starts not holding")
	}
	t2 := NewTable(Policy{Kind: PolicyT2, K: 2})
	if !t2.Holds("x") {
		t.Fatal("T2 starts holding")
	}
	if sw.Len() != 0 || t1.Len() != 0 || t2.Len() != 0 {
		t.Fatal("Holds must not allocate rows")
	}
	none := NewTable(Policy{Kind: PolicyNone})
	if !none.OnRead("x") || !none.OnWrite("x") || !none.Holds("x") {
		t.Fatal("PolicyNone always votes to hold")
	}
}

func TestPolicyValidate(t *testing.T) {
	bad := []Policy{
		{Kind: PolicySW, K: 0},
		{Kind: PolicySW, K: 65},
		{Kind: PolicyT1, K: 0},
		{Kind: PolicyT2, K: -1},
		{Kind: PolicyKind(9), K: 1},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", p)
		}
	}
	good := []Policy{{Kind: PolicyNone}, {Kind: PolicySW, K: 64}, {Kind: PolicyT1, K: 1}, {Kind: PolicyT2, K: 9}}
	for _, p := range good {
		if err := p.Validate(); err != nil {
			t.Errorf("Validate rejected %v: %v", p, err)
		}
	}
}

func manyKeys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("k%02d", i)
	}
	return out
}
