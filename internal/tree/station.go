package tree

import (
	"fmt"
	"sync"
	"sync/atomic"

	"mobirep/internal/db"
	"mobirep/internal/replica"
	"mobirep/internal/transport"
)

// Station is one stationary support station of a replica tree. The root
// owns the authoritative store and is exactly the two-node SC (no hooks
// installed). A relay runs the same sharded session core toward its
// children and a plain MC client toward its parent, glued together by
// the replica package's relay hooks:
//
//   - reads a child cannot serve locally arrive at the station's Server,
//     whose origin hook (fetch) resolves them through the parent face —
//     from the station's own copy when it holds one fresh enough, with
//     one upstream round trip otherwise — then folds the value into the
//     station's mirror store and answers the child;
//   - the allocation gate keeps copies contiguous: a child may hold a
//     key only while this station holds it on its parent face, so every
//     copy in the tree lives on an unbroken root-to-leaf path;
//   - writes propagate downward through the apply handler (parent-face
//     WriteProps and resync re-ships fan out to subscribed children),
//     and parent-face drops cascade as child invalidations;
//   - an epoch fence from upstream (the root restarted) invalidates the
//     whole subtree before the station serves again.
//
// The placement table (placement.go) rides on top: it observes the
// station's read/write traffic and sheds copies the policy votes
// against, shifting cost but never correctness.
type Station struct {
	idx  int
	mode replica.Mode

	store *db.Store
	srv   *replica.Server
	// cli is the parent face; nil at the root. Stored atomically because
	// the allocation gate and origin run on child delivery goroutines and
	// may fire before ConnectParent.
	cli atomic.Pointer[replica.Client]

	pmu       sync.Mutex
	placement *Table // nil = placement disabled
}

// NewRoot wraps an existing server-side store as the tree's root
// station: the plain two-node SC, no relay hooks.
func NewRoot(store *db.Store, mode replica.Mode, shards int) (*Station, error) {
	srv, err := replica.NewServerShards(store, mode, shards)
	if err != nil {
		return nil, err
	}
	return &Station{idx: 0, mode: mode, store: store, srv: srv}, nil
}

// NewRelay creates a relay station: an in-memory mirror store, a child-
// face server with the origin and allocation-gate hooks installed, and
// (optionally) a placement table. The parent face is wired separately
// with ConnectParent.
func NewRelay(idx int, mode replica.Mode, shards int, placement Policy) (*Station, error) {
	if err := placement.Validate(); err != nil {
		return nil, err
	}
	store := db.NewStore()
	srv, err := replica.NewServerShards(store, mode, shards)
	if err != nil {
		return nil, err
	}
	st := &Station{idx: idx, mode: mode, store: store, srv: srv}
	if placement.Kind != PolicyNone {
		st.placement = NewTable(placement)
	}
	srv.SetOrigin(st.fetch)
	srv.SetAllocGate(st.gate)
	return st, nil
}

// ConnectParent wires the station's parent face over link: the MC-side
// client with floor tracking (subtree-monotone reads) and the downward
// mirroring handlers. Call once, before child traffic needs the parent;
// later outages reuse the same client through Suspend/ResumeResync or
// Reattach (directly or via a replica.Supervisor).
func (st *Station) ConnectParent(link transport.Link) error {
	if st.cli.Load() != nil {
		return fmt.Errorf("tree: station %d already has a parent face", st.idx)
	}
	cli, err := replica.NewClient(link, st.mode)
	if err != nil {
		return err
	}
	cli.SetTrackFloors(true)
	cli.SetApplyHandler(st.onApply)
	cli.SetDropHandler(st.dropDown)
	cli.SetFenceHandler(st.onFence)
	st.cli.Store(cli)
	return nil
}

// Index returns the station's position in the topology.
func (st *Station) Index() int { return st.idx }

// Server returns the child-face server (attach children and MCs here).
func (st *Station) Server() *replica.Server { return st.srv }

// Client returns the parent-face client (nil at the root) — the handle
// reconnect machinery drives.
func (st *Station) Client() *replica.Client { return st.cli.Load() }

// Store returns the station's store: authoritative at the root, the
// warm mirror at a relay.
func (st *Station) Store() *db.Store { return st.store }

// Placement returns the station's placement policy (PolicyNone when
// disabled).
func (st *Station) Placement() Policy {
	if st.placement == nil {
		return Policy{Kind: PolicyNone}
	}
	return st.placement.Policy()
}

// fetch is the origin hook: resolve a child's read through the parent
// face, fold the answer into the mirror, and let placement reconsider.
// Runs on a child delivery goroutine and never blocks — ReadThrough
// completes synchronously from the station's own copy or registers a
// continuation for the upstream round trip.
func (st *Station) fetch(key string, floor uint64, done func(it db.Item, ok bool)) {
	st.noteRead(key)
	cli := st.cli.Load()
	if cli == nil {
		mFetchFailed.Inc()
		done(db.Item{}, false)
		return
	}
	local := cli.HasCopy(key)
	cli.ReadThrough(key, floor, func(it db.Item, ok bool) {
		if !ok {
			mFetchFailed.Inc()
			done(db.Item{}, false)
			return
		}
		if local {
			mFetchLocal.Inc()
		} else {
			mFetchParent.Inc()
		}
		if it.Version > 0 {
			// Mirror the fetched value: children holding copies see it as
			// a propagation; stale answers are version-guarded inert.
			if fresh, _ := st.srv.Apply(db.Item{Key: key, Value: it.Value, Version: it.Version}); fresh {
				mApplies.Inc()
			}
		}
		st.realize(key)
		done(it, ok)
	})
}

// gate is the allocation gate: a child may hold key only while this
// station holds it upstream — the contiguity invariant. The root has no
// gate (it holds everything by definition).
func (st *Station) gate(key string) bool {
	cli := st.cli.Load()
	return cli != nil && cli.HasCopy(key)
}

// onApply mirrors a parent-face value downward: writes propagated or
// re-shipped by the parent fan out to this station's children exactly
// like a local write, and placement observes the write.
func (st *Station) onApply(it db.Item) {
	st.noteWrite(it.Key)
	if it.Version > 0 {
		if fresh, _ := st.srv.Apply(it); fresh {
			mApplies.Inc()
		}
	}
	st.realize(it.Key)
}

// dropDown cascades a parent-face copy drop: children may not hold what
// this station no longer does.
func (st *Station) dropDown(key string) {
	if n := st.srv.Invalidate(key); n > 0 {
		mInvalidations.Add(uint64(n))
	}
}

// onFence answers an upstream epoch fence: the authority restarted, so
// every copy below this station predates the restart and must go.
func (st *Station) onFence() {
	mFences.Inc()
	if n := st.srv.InvalidateAll(); n > 0 {
		mInvalidations.Add(uint64(n))
	}
}

// noteRead/noteWrite feed the placement table; realize enforces its
// vote, shedding the parent-face copy (and, through the drop cascade,
// every child copy) when the policy turns against the key.
func (st *Station) noteRead(key string) {
	if st.placement == nil {
		return
	}
	st.pmu.Lock()
	st.placement.OnRead(key)
	st.pmu.Unlock()
}

func (st *Station) noteWrite(key string) {
	if st.placement == nil {
		return
	}
	st.pmu.Lock()
	st.placement.OnWrite(key)
	st.pmu.Unlock()
}

func (st *Station) realize(key string) {
	if st.placement == nil {
		return
	}
	st.pmu.Lock()
	hold := st.placement.Holds(key)
	st.pmu.Unlock()
	if hold {
		return
	}
	cli := st.cli.Load()
	if cli != nil && cli.DropCopy(key) {
		mPlacementDrops.Inc()
	}
}
