package wire

import (
	"bytes"
	"testing"

	"mobirep/internal/sched"
)

// FuzzDecode feeds arbitrary frames to the decoder: it must never panic,
// and any frame it accepts must re-encode/re-decode to the same message
// (decode is a retraction of encode on its image).
func FuzzDecode(f *testing.F) {
	seeds := []Message{
		{Kind: KindReadReq, Key: "x"},
		{Kind: KindReadResp, Key: "key", Value: []byte("value"), Version: 7,
			Allocate: true, Window: sched.MustParse("rwrwr")},
		{Kind: KindWriteProp, Key: "k", Value: bytes.Repeat([]byte{0xaa}, 100), Version: 1},
		{Kind: KindDeleteReq, Key: "", Window: sched.MustParse("www")},
	}
	for _, m := range seeds {
		frame, err := Encode(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
	}
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})

	f.Fuzz(func(t *testing.T, frame []byte) {
		m, err := Decode(frame)
		mb, errB := DecodeBorrowed(frame)
		// The borrowed decoder must accept and reject exactly the frames
		// the owning decoder does, with field-identical results.
		if (err == nil) != (errB == nil) {
			t.Fatalf("decoders disagree: Decode err=%v, DecodeBorrowed err=%v", err, errB)
		}
		if err != nil {
			return // rejected: fine
		}
		if mb.Kind != m.Kind || mb.Key != m.Key || mb.Version != m.Version ||
			mb.Allocate != m.Allocate || !bytes.Equal(mb.Value, m.Value) ||
			mb.Window.String() != m.Window.String() {
			t.Fatalf("borrowed decode diverged: %+v vs %+v", m, mb)
		}
		re, err := Encode(m)
		if err != nil {
			t.Fatalf("accepted message failed to re-encode: %+v: %v", m, err)
		}
		// The appending encoder must produce bit-identical frames.
		reA, err := AppendEncode(nil, m)
		if err != nil || !bytes.Equal(reA, re) {
			t.Fatalf("AppendEncode diverged from Encode: err=%v\n got %x\nwant %x", err, reA, re)
		}
		m2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		if m2.Kind != m.Kind || m2.Key != m.Key || m2.Version != m.Version ||
			m2.Allocate != m.Allocate || !bytes.Equal(m2.Value, m.Value) ||
			m2.Window.String() != m.Window.String() {
			t.Fatalf("round trip diverged: %+v vs %+v", m, m2)
		}
	})
}
