// Package wire defines the binary message format spoken between the
// mobile computer and the stationary computer in the replica protocol of
// section 4. Four message kinds match the paper's communication events
// exactly:
//
//   - ReadReq (control): the MC forwards a read to the SC.
//   - ReadResp (data): the SC returns the item; the Allocate flag plus the
//     piggybacked window implement the copy allocation of section 4.
//   - WriteProp (data): the SC propagates a committed write to a
//     subscribed MC.
//   - DeleteReq (control): deallocation. Sent MC -> SC when the window
//     turns write-majority (carrying the window for the ownership
//     handoff), or SC -> MC under the SW1 optimization, where a write is
//     answered by dropping the copy instead of propagating data.
//
// Three further kinds carry liveness and admission traffic, which exists
// only because real mobile links die silently and real servers have
// finite capacity — they are not part of the paper's cost model and are
// not metered as protocol traffic:
//
//   - Ping (MC -> SC): keepalive probe; Version carries a sequence
//     number. The SC refreshes the session's last-seen time.
//   - Pong (SC -> MC): echo of a Ping, same sequence number.
//   - Busy (SC -> MC): overload signal; Key carries the reason and
//     Version a retry-after hint in milliseconds (see KindBusy).
//
// The encoding is a fixed header plus length-prefixed fields; window bits
// are packed eight per byte. Decode rejects malformed frames rather than
// guessing.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"unsafe"

	"mobirep/internal/sched"
)

// Kind discriminates protocol messages.
type Kind uint8

const (
	// KindReadReq is the MC's remote read request (control message).
	KindReadReq Kind = iota + 1
	// KindReadResp is the SC's read response (data message).
	KindReadResp
	// KindWriteProp is the SC's write propagation (data message).
	KindWriteProp
	// KindDeleteReq is the deallocation request (control message).
	KindDeleteReq
	// KindPing is the MC's keepalive probe; Version carries the sequence
	// number. Liveness traffic, not metered as protocol cost.
	KindPing
	// KindPong is the SC's echo of a Ping, same sequence number.
	KindPong
	// KindBusy is the SC's overload signal (SC -> MC): the server refused
	// an attach (admission control) or is shedding this session (memory
	// watermark). Key carries the reason ("full", "rate", "shed",
	// "slow-consumer"), Version a retry-after hint in milliseconds that
	// the client's reconnect supervisor honors in its backoff —
	// distinguishing "server full, come back later" from "server dead".
	// Like Ping/Pong it is liveness traffic, not metered as protocol cost.
	KindBusy
	// KindAttachResp is the SC's greeting on a successful attach (SC ->
	// MC): Version carries the server's store epoch, durably bumped on
	// every process start. A client that sees the epoch change knows the
	// authority restarted and must fence: drop warm state and resync cold
	// (see replica.ErrEpochChanged). Sent only by servers with a
	// persistent store (epoch > 0); best-effort — the authoritative fence
	// is the epoch echoed on every ResyncResp. Liveness traffic, not
	// metered as protocol cost.
	KindAttachResp
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindReadReq:
		return "read-req"
	case KindReadResp:
		return "read-resp"
	case KindWriteProp:
		return "write-prop"
	case KindDeleteReq:
		return "delete-req"
	case KindPing:
		return "ping"
	case KindPong:
		return "pong"
	case KindBusy:
		return "busy"
	case KindAttachResp:
		return "attach-resp"
	case KindMultiReadReq:
		return "multi-read-req"
	case KindMultiReadResp:
		return "multi-read-resp"
	case KindResyncReq:
		return "resync-req"
	case KindResyncResp:
		return "resync-resp"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Control reports whether the kind is a control message (cost omega);
// otherwise it is a data message (cost 1).
func (k Kind) Control() bool {
	return k == KindReadReq || k == KindDeleteReq
}

// Message is one protocol message.
type Message struct {
	// Kind discriminates the payload.
	Kind Kind
	// Key names the data item.
	Key string
	// Value is the item payload (ReadResp, WriteProp).
	Value []byte
	// Version is the item version (ReadResp, WriteProp).
	Version uint64
	// Allocate is set on a ReadResp that allocates a copy at the MC.
	Allocate bool
	// Window carries the sliding window, oldest first, on ownership
	// handoffs (allocating ReadResp and MC-originated DeleteReq).
	Window sched.Schedule
}

const maxKeyLen = 1<<16 - 1

// Clone returns a deep copy of m that shares no memory with the original.
// Handlers given a borrowed message (DecodeBorrowed) must clone it before
// retaining any part of it past the handler's return.
func (m Message) Clone() Message {
	if len(m.Key) > 0 {
		m.Key = string(append([]byte(nil), m.Key...))
	}
	if len(m.Value) > 0 {
		m.Value = append([]byte(nil), m.Value...)
	}
	if len(m.Window) > 0 {
		m.Window = append(sched.Schedule(nil), m.Window...)
	}
	return m
}

// EncodedSize returns the exact frame size Encode would produce for m.
func EncodedSize(m Message) int {
	return 2 + 8 + 2 + len(m.Key) + 4 + len(m.Value) + 2 + (len(m.Window)+7)/8
}

// Encode serializes m into a fresh buffer. It is AppendEncode into an
// exactly-sized allocation; hot paths should prefer AppendEncode with a
// pooled buffer (GetBuf/PutBuf) to avoid the per-frame allocation.
func Encode(m Message) ([]byte, error) {
	return AppendEncode(make([]byte, 0, EncodedSize(m)), m)
}

// AppendEncode serializes m, appending the frame to dst and returning the
// extended buffer (reallocated if dst lacks capacity, exactly like
// append). The bytes appended are bit-identical to Encode's output. On
// error dst is returned unchanged.
func AppendEncode(dst []byte, m Message) ([]byte, error) {
	if len(m.Key) > maxKeyLen {
		return dst, fmt.Errorf("wire: key length %d exceeds %d", len(m.Key), maxKeyLen)
	}
	if len(m.Window) > maxKeyLen {
		return dst, fmt.Errorf("wire: window length %d exceeds %d", len(m.Window), maxKeyLen)
	}
	flags := byte(0)
	if m.Allocate {
		flags = 1
	}
	dst = append(dst, byte(m.Kind), flags)
	dst = binary.LittleEndian.AppendUint64(dst, m.Version)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(m.Key)))
	dst = append(dst, m.Key...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(m.Value)))
	dst = append(dst, m.Value...)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(m.Window)))
	dst = appendPackedWindow(dst, m.Window)
	return dst, nil
}

// Buf is a reusable encode buffer; see GetBuf.
type Buf struct {
	// B holds the encoded frame. Callers re-slice it to B[:0], append
	// with AppendEncode, and store the result back before PutBuf.
	B []byte
}

// maxPooledBuf caps the capacity of buffers kept in the pool so one huge
// value does not pin megabytes behind every future small frame.
const maxPooledBuf = 64 << 10

var bufPool = sync.Pool{New: func() any { return &Buf{B: make([]byte, 0, 256)} }}

// GetBuf returns a pooled encode buffer for use with AppendEncode. The
// send paths of the replica package thread these through so steady-state
// encodes cost zero allocations. Return it with PutBuf once the frame has
// been handed to a transport (links never retain a frame after Send
// returns, so releasing right after Send is safe).
func GetBuf() *Buf { return bufPool.Get().(*Buf) }

// PutBuf recycles a buffer obtained from GetBuf. Oversized buffers are
// dropped rather than pooled.
func PutBuf(b *Buf) {
	if b == nil || cap(b.B) > maxPooledBuf {
		return
	}
	b.B = b.B[:0]
	bufPool.Put(b)
}

var errTruncated = errors.New("wire: truncated message")

// FrameKind peeks the message kind of an encoded frame — singleton or
// batch, both put the kind in byte 0 — without decoding it. ok is false
// for an empty frame. The transport's per-kind byte accounting uses this
// to classify traffic without paying for a decode.
func FrameKind(p []byte) (Kind, bool) {
	if len(p) == 0 {
		return 0, false
	}
	return Kind(p[0]), true
}

// Decode parses a frame produced by Encode. The returned message owns all
// of its memory: Key, Value, and Window are copies, safe to retain after
// the frame buffer is reused.
func Decode(p []byte) (Message, error) {
	return decodeFrame(p, false)
}

// DecodeBorrowed parses a frame without copying: the returned message's
// Key and Value alias p directly (the Window, rare on hot paths, is still
// unpacked into fresh memory). The message is only valid while p is — for
// transport handlers, until the handler returns. A handler that retains
// any part of the message must Clone it (or copy the fields it keeps)
// first. Accepts and rejects exactly the frames Decode does, with
// field-identical results.
func DecodeBorrowed(p []byte) (Message, error) {
	return decodeFrame(p, true)
}

func decodeFrame(p []byte, borrow bool) (Message, error) {
	var m Message
	if len(p) < 2+8+2 {
		return m, errTruncated
	}
	m.Kind = Kind(p[0])
	if m.Kind < KindReadReq || m.Kind > KindAttachResp {
		return m, fmt.Errorf("wire: unknown message kind %d", p[0])
	}
	if p[1] > 1 {
		return m, fmt.Errorf("wire: bad flags %#x", p[1])
	}
	m.Allocate = p[1] == 1
	p = p[2:]
	m.Version = binary.LittleEndian.Uint64(p[:8])
	p = p[8:]
	klen := int(binary.LittleEndian.Uint16(p[:2]))
	p = p[2:]
	if len(p) < klen+4 {
		return m, errTruncated
	}
	if borrow {
		m.Key = borrowString(p[:klen])
	} else {
		m.Key = string(p[:klen])
	}
	p = p[klen:]
	vlen := int(binary.LittleEndian.Uint32(p[:4]))
	p = p[4:]
	if vlen > len(p) {
		return m, errTruncated
	}
	if vlen > 0 {
		if borrow {
			// Full slice expression: an append through the alias must
			// never grow into the rest of the frame.
			m.Value = p[:vlen:vlen]
		} else {
			m.Value = append([]byte(nil), p[:vlen]...)
		}
	}
	p = p[vlen:]
	if len(p) < 2 {
		return m, errTruncated
	}
	wlen := int(binary.LittleEndian.Uint16(p[:2]))
	p = p[2:]
	packed := (wlen + 7) / 8
	if len(p) != packed {
		return m, fmt.Errorf("wire: window needs %d bytes, frame has %d", packed, len(p))
	}
	m.Window = unpackWindow(p, wlen)
	return m, nil
}

// borrowString aliases b as a string without copying. The string is only
// valid while b's backing memory is.
func borrowString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// appendPackedWindow appends w packed as bits — LSB-first within each
// byte, write = 1 — to dst without an intermediate allocation.
func appendPackedWindow(dst []byte, w sched.Schedule) []byte {
	if len(w) == 0 {
		return dst
	}
	base := len(dst)
	for n := (len(w) + 7) / 8; n > 0; n-- {
		dst = append(dst, 0)
	}
	for i, op := range w {
		if op == sched.Write {
			dst[base+i/8] |= 1 << (i % 8)
		}
	}
	return dst
}

func unpackWindow(p []byte, n int) sched.Schedule {
	if n == 0 {
		return nil
	}
	out := make(sched.Schedule, n)
	for i := range out {
		if p[i/8]>>(i%8)&1 == 1 {
			out[i] = sched.Write
		}
	}
	return out
}
