// Package wire defines the binary message format spoken between the
// mobile computer and the stationary computer in the replica protocol of
// section 4. Four message kinds match the paper's communication events
// exactly:
//
//   - ReadReq (control): the MC forwards a read to the SC.
//   - ReadResp (data): the SC returns the item; the Allocate flag plus the
//     piggybacked window implement the copy allocation of section 4.
//   - WriteProp (data): the SC propagates a committed write to a
//     subscribed MC.
//   - DeleteReq (control): deallocation. Sent MC -> SC when the window
//     turns write-majority (carrying the window for the ownership
//     handoff), or SC -> MC under the SW1 optimization, where a write is
//     answered by dropping the copy instead of propagating data.
//
// Two further kinds carry liveness traffic, which exists only because
// real mobile links die silently — they are not part of the paper's cost
// model and are not metered as protocol traffic:
//
//   - Ping (MC -> SC): keepalive probe; Version carries a sequence
//     number. The SC refreshes the session's last-seen time.
//   - Pong (SC -> MC): echo of a Ping, same sequence number.
//
// The encoding is a fixed header plus length-prefixed fields; window bits
// are packed eight per byte. Decode rejects malformed frames rather than
// guessing.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"mobirep/internal/sched"
)

// Kind discriminates protocol messages.
type Kind uint8

const (
	// KindReadReq is the MC's remote read request (control message).
	KindReadReq Kind = iota + 1
	// KindReadResp is the SC's read response (data message).
	KindReadResp
	// KindWriteProp is the SC's write propagation (data message).
	KindWriteProp
	// KindDeleteReq is the deallocation request (control message).
	KindDeleteReq
	// KindPing is the MC's keepalive probe; Version carries the sequence
	// number. Liveness traffic, not metered as protocol cost.
	KindPing
	// KindPong is the SC's echo of a Ping, same sequence number.
	KindPong
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindReadReq:
		return "read-req"
	case KindReadResp:
		return "read-resp"
	case KindWriteProp:
		return "write-prop"
	case KindDeleteReq:
		return "delete-req"
	case KindPing:
		return "ping"
	case KindPong:
		return "pong"
	case KindMultiReadReq:
		return "multi-read-req"
	case KindMultiReadResp:
		return "multi-read-resp"
	case KindResyncReq:
		return "resync-req"
	case KindResyncResp:
		return "resync-resp"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Control reports whether the kind is a control message (cost omega);
// otherwise it is a data message (cost 1).
func (k Kind) Control() bool {
	return k == KindReadReq || k == KindDeleteReq
}

// Message is one protocol message.
type Message struct {
	// Kind discriminates the payload.
	Kind Kind
	// Key names the data item.
	Key string
	// Value is the item payload (ReadResp, WriteProp).
	Value []byte
	// Version is the item version (ReadResp, WriteProp).
	Version uint64
	// Allocate is set on a ReadResp that allocates a copy at the MC.
	Allocate bool
	// Window carries the sliding window, oldest first, on ownership
	// handoffs (allocating ReadResp and MC-originated DeleteReq).
	Window sched.Schedule
}

const maxKeyLen = 1<<16 - 1

// Encode serializes m.
func Encode(m Message) ([]byte, error) {
	if len(m.Key) > maxKeyLen {
		return nil, fmt.Errorf("wire: key length %d exceeds %d", len(m.Key), maxKeyLen)
	}
	if len(m.Window) > maxKeyLen {
		return nil, fmt.Errorf("wire: window length %d exceeds %d", len(m.Window), maxKeyLen)
	}
	flags := byte(0)
	if m.Allocate {
		flags = 1
	}
	out := make([]byte, 0, 16+len(m.Key)+len(m.Value)+len(m.Window)/8+1)
	out = append(out, byte(m.Kind), flags)
	out = binary.LittleEndian.AppendUint64(out, m.Version)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(m.Key)))
	out = append(out, m.Key...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(m.Value)))
	out = append(out, m.Value...)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(m.Window)))
	out = append(out, packWindow(m.Window)...)
	return out, nil
}

var errTruncated = errors.New("wire: truncated message")

// FrameKind peeks the message kind of an encoded frame — singleton or
// batch, both put the kind in byte 0 — without decoding it. ok is false
// for an empty frame. The transport's per-kind byte accounting uses this
// to classify traffic without paying for a decode.
func FrameKind(p []byte) (Kind, bool) {
	if len(p) == 0 {
		return 0, false
	}
	return Kind(p[0]), true
}

// Decode parses a frame produced by Encode.
func Decode(p []byte) (Message, error) {
	var m Message
	if len(p) < 2+8+2 {
		return m, errTruncated
	}
	m.Kind = Kind(p[0])
	if m.Kind < KindReadReq || m.Kind > KindPong {
		return m, fmt.Errorf("wire: unknown message kind %d", p[0])
	}
	if p[1] > 1 {
		return m, fmt.Errorf("wire: bad flags %#x", p[1])
	}
	m.Allocate = p[1] == 1
	p = p[2:]
	m.Version = binary.LittleEndian.Uint64(p[:8])
	p = p[8:]
	klen := int(binary.LittleEndian.Uint16(p[:2]))
	p = p[2:]
	if len(p) < klen+4 {
		return m, errTruncated
	}
	m.Key = string(p[:klen])
	p = p[klen:]
	vlen := int(binary.LittleEndian.Uint32(p[:4]))
	p = p[4:]
	if vlen > len(p) {
		return m, errTruncated
	}
	if vlen > 0 {
		m.Value = append([]byte(nil), p[:vlen]...)
	}
	p = p[vlen:]
	if len(p) < 2 {
		return m, errTruncated
	}
	wlen := int(binary.LittleEndian.Uint16(p[:2]))
	p = p[2:]
	packed := (wlen + 7) / 8
	if len(p) != packed {
		return m, fmt.Errorf("wire: window needs %d bytes, frame has %d", packed, len(p))
	}
	m.Window = unpackWindow(p, wlen)
	return m, nil
}

// packWindow packs ops as bits, LSB-first within each byte, write = 1.
func packWindow(w sched.Schedule) []byte {
	if len(w) == 0 {
		return nil
	}
	out := make([]byte, (len(w)+7)/8)
	for i, op := range w {
		if op == sched.Write {
			out[i/8] |= 1 << (i % 8)
		}
	}
	return out
}

func unpackWindow(p []byte, n int) sched.Schedule {
	if n == 0 {
		return nil
	}
	out := make(sched.Schedule, n)
	for i := range out {
		if p[i/8]>>(i%8)&1 == 1 {
			out[i] = sched.Write
		}
	}
	return out
}
