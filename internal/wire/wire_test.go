package wire

import (
	"bytes"
	"testing"
	"testing/quick"

	"mobirep/internal/sched"
)

func TestKindStrings(t *testing.T) {
	cases := map[Kind]string{
		KindReadReq: "read-req", KindReadResp: "read-resp",
		KindWriteProp: "write-prop", KindDeleteReq: "delete-req",
		KindPing: "ping", KindPong: "pong", KindBusy: "busy",
		KindMultiReadReq: "multi-read-req", KindMultiReadResp: "multi-read-resp",
		KindResyncReq: "resync-req", KindResyncResp: "resync-resp",
		Kind(0): "kind(0)",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Fatalf("%d.String() = %q", k, k.String())
		}
	}
}

func TestFrameKindPeek(t *testing.T) {
	frame, err := Encode(Message{Kind: KindWriteProp, Key: "x", Value: []byte("v")})
	if err != nil {
		t.Fatal(err)
	}
	if k, ok := FrameKind(frame); !ok || k != KindWriteProp {
		t.Fatalf("FrameKind = %v, %v", k, ok)
	}
	batch, err := EncodeBatch(Batch{Kind: KindResyncReq, Keys: []string{"a"}, Versions: []uint64{1}})
	if err != nil {
		t.Fatal(err)
	}
	if k, ok := FrameKind(batch); !ok || k != KindResyncReq {
		t.Fatalf("FrameKind(batch) = %v, %v", k, ok)
	}
	if _, ok := FrameKind(nil); ok {
		t.Fatal("FrameKind(nil) reported ok")
	}
}

func TestKindControl(t *testing.T) {
	if !KindReadReq.Control() || !KindDeleteReq.Control() {
		t.Fatal("requests should be control messages")
	}
	if KindReadResp.Control() || KindWriteProp.Control() {
		t.Fatal("responses/propagations should be data messages")
	}
}

func TestEncodeDecodeAllKinds(t *testing.T) {
	msgs := []Message{
		{Kind: KindReadReq, Key: "x"},
		{Kind: KindReadResp, Key: "x", Value: []byte("payload"), Version: 42},
		{Kind: KindReadResp, Key: "x", Value: []byte("p"), Version: 7, Allocate: true,
			Window: sched.MustParse("rwrwr")},
		{Kind: KindWriteProp, Key: "a key with spaces", Value: nil, Version: 1},
		{Kind: KindDeleteReq, Key: "x", Window: sched.MustParse("wwr")},
		{Kind: KindDeleteReq, Key: ""},
		{Kind: KindPing, Version: 17},
		{Kind: KindPong, Version: 17},
		{Kind: KindBusy, Key: "full", Version: 1500},
	}
	for i, m := range msgs {
		frame, err := Encode(m)
		if err != nil {
			t.Fatalf("msg %d: %v", i, err)
		}
		back, err := Decode(frame)
		if err != nil {
			t.Fatalf("msg %d: %v", i, err)
		}
		if back.Kind != m.Kind || back.Key != m.Key || back.Version != m.Version ||
			back.Allocate != m.Allocate {
			t.Fatalf("msg %d: %+v != %+v", i, back, m)
		}
		if !bytes.Equal(back.Value, m.Value) {
			t.Fatalf("msg %d: value %q != %q", i, back.Value, m.Value)
		}
		if back.Window.String() != m.Window.String() {
			t.Fatalf("msg %d: window %q != %q", i, back.Window, m.Window)
		}
	}
}

func TestBusyFrame(t *testing.T) {
	// Busy carries the reason in Key and the retry-after hint (ms) in
	// Version, and like Ping/Pong it is liveness traffic, not protocol cost.
	m := Message{Kind: KindBusy, Key: "shed", Version: 250}
	frame, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	if k, ok := FrameKind(frame); !ok || k != KindBusy {
		t.Fatalf("FrameKind = %v, %v", k, ok)
	}
	back, err := DecodeBorrowed(frame)
	if err != nil {
		t.Fatal(err)
	}
	if back.Kind != KindBusy || back.Key != "shed" || back.Version != 250 {
		t.Fatalf("decoded %+v", back)
	}
	if KindBusy.Control() {
		t.Fatal("Busy must not be metered as a control message")
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	check := func(kindRaw uint8, key string, value []byte, version uint64, alloc bool, winBits []bool) bool {
		kind := Kind(kindRaw%4) + KindReadReq
		if len(key) > maxKeyLen {
			key = key[:maxKeyLen]
		}
		win := make(sched.Schedule, len(winBits))
		for i, b := range winBits {
			if b {
				win[i] = sched.Write
			}
		}
		m := Message{Kind: kind, Key: key, Value: value, Version: version,
			Allocate: alloc, Window: win}
		frame, err := Encode(m)
		if err != nil {
			return false
		}
		back, err := Decode(frame)
		if err != nil {
			return false
		}
		if len(back.Value) == 0 && len(m.Value) == 0 {
			// nil vs empty are equivalent on the wire
		} else if !bytes.Equal(back.Value, m.Value) {
			return false
		}
		return back.Kind == m.Kind && back.Key == m.Key &&
			back.Version == m.Version && back.Allocate == m.Allocate &&
			back.Window.String() == m.Window.String()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	// Truncations of a valid frame must all fail or decode to a different,
	// still-valid message — never panic.
	m := Message{Kind: KindReadResp, Key: "key", Value: []byte("value"),
		Version: 9, Allocate: true, Window: sched.MustParse("rrwwr")}
	frame, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(frame); n++ {
		if _, err := Decode(frame[:n]); err == nil {
			t.Fatalf("decode of %d/%d bytes unexpectedly succeeded", n, len(frame))
		}
	}
}

func TestDecodeRejectsBadKind(t *testing.T) {
	m := Message{Kind: KindReadReq, Key: "x"}
	frame, _ := Encode(m)
	frame[0] = 99
	if _, err := Decode(frame); err == nil {
		t.Fatal("bad kind accepted")
	}
	frame[0] = 0
	if _, err := Decode(frame); err == nil {
		t.Fatal("zero kind accepted")
	}
}

func TestDecodeRejectsBadFlags(t *testing.T) {
	m := Message{Kind: KindReadReq, Key: "x"}
	frame, _ := Encode(m)
	frame[1] = 0xff
	if _, err := Decode(frame); err == nil {
		t.Fatal("bad flags accepted")
	}
}

func TestDecodeRejectsTrailingBytes(t *testing.T) {
	m := Message{Kind: KindReadReq, Key: "x"}
	frame, _ := Encode(m)
	if _, err := Decode(append(frame, 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestEncodeRejectsOversizedKey(t *testing.T) {
	if _, err := Encode(Message{Kind: KindReadReq, Key: string(make([]byte, maxKeyLen+1))}); err == nil {
		t.Fatal("oversized key accepted")
	}
}

func TestWindowPackingDense(t *testing.T) {
	// 9 bits crosses a byte boundary; check exact packing.
	w := sched.MustParse("rwrwrwrwr")
	packed := appendPackedWindow(nil, w)
	if len(packed) != 2 {
		t.Fatalf("packed length = %d", len(packed))
	}
	// Writes sit at odd indices: bit pattern 10101010, ninth bit clear.
	if packed[0] != 0b10101010 || packed[1] != 0 {
		t.Fatalf("packed = %08b %08b", packed[0], packed[1])
	}
	if got := unpackWindow(packed, 9); got.String() != w.String() {
		t.Fatalf("unpacked %q", got)
	}
	if appendPackedWindow(nil, nil) != nil {
		t.Fatal("empty window should pack to nil")
	}
	if unpackWindow(nil, 0) != nil {
		t.Fatal("empty window should unpack to nil")
	}
}
