package wire

import (
	"encoding/binary"
	"fmt"

	"mobirep/internal/sched"
)

// Batch messages implement the section 7.2 premise that "multiple data
// items can be remotely read in one connection": a joint read sends one
// control message naming every missing key and receives one data message
// carrying every value (with per-entry allocation flags and piggybacked
// windows), instead of a message pair per key.
//
// The resync pair reuses the same codec for warm reattachment: after a
// link blip the mobile computer declares the copies it still holds (keys
// plus cached version stamps) in one control message, and the stationary
// computer re-asserts the subscriptions and answers with one data message
// that revalidates current copies (NotModified, no payload) and re-ships
// only the keys that changed while the client was away.

// The batch kinds live at 20+ rather than extending the singleton range:
// they were renumbered when the frame layout changed (see batchFormat),
// so a pre-epoch peer — which knew the batch kinds only at their old
// values — rejects a modern frame as an unknown kind instead of
// misparsing the inserted epoch bytes as a key count.
const (
	// KindMultiReadReq is a joint read request (control message) listing
	// the keys the mobile computer is missing.
	KindMultiReadReq Kind = 20 + iota
	// KindMultiReadResp is the joint response (one data message) carrying
	// every requested item.
	KindMultiReadResp
	// KindResyncReq declares, after a reattach, the copies the MC still
	// holds: Keys plus their cached Versions (control message).
	KindResyncReq
	// KindResyncResp answers a resync: per held key either NotModified
	// (the cached copy is current) or the fresh item (data message).
	KindResyncResp
)

// batchFormat versions the batch frame layout and sits in the byte right
// after the kind. A decoder rejects any format it does not know, so a
// peer speaking a different layout fails loudly instead of silently
// shifting every later field. Any future layout change must bump this
// constant (and renumber the kinds if the change must also be rejected
// by peers predating the format byte itself).
//
// Format 2 added the 8-byte store epoch after the format byte; format 1
// (no epoch, no format byte) used kinds 10–13 and is no longer spoken.
const batchFormat = 2

// isBatchKind reports whether k uses the batch codec.
func isBatchKind(k Kind) bool {
	return k >= KindMultiReadReq && k <= KindResyncResp
}

// Entry is one item inside a batch message.
type Entry struct {
	// Key names the data item.
	Key string
	// Value and Version carry the item (responses only).
	Value   []byte
	Version uint64
	// Allocate is set when this entry's copy should be installed at the
	// MC; Window then carries that key's sliding window for the handoff.
	Allocate bool
	Window   sched.Schedule
	// NotModified is set when the client's version hint matched: the
	// payload is omitted and the client's archived value is current.
	NotModified bool
}

// Batch is a joint protocol message.
type Batch struct {
	// Kind is KindMultiReadReq or KindMultiReadResp.
	Kind Kind
	// Epoch carries the server's store epoch on responses (ResyncResp,
	// MultiReadResp); 0 means no epoch (in-memory store, or a request).
	// Clients fence on it: a changed epoch means the authority restarted
	// and warm state cannot be trusted.
	Epoch uint64
	// Keys lists the requested keys (requests only).
	Keys []string
	// Versions, parallel to Keys, carries revalidation hints: the version
	// the client last saw for each key (0 = no hint). A server holding
	// exactly that version answers NotModified instead of shipping the
	// payload again.
	Versions []uint64
	// Entries carries the items (responses only).
	Entries []Entry
}

// Control reports whether the batch is a control message.
func (b Batch) Control() bool {
	return b.Kind == KindMultiReadReq || b.Kind == KindResyncReq
}

const maxBatch = 1 << 12

// EncodeBatch serializes a batch message into a fresh buffer. It is
// AppendEncodeBatch into a new allocation; hot paths should prefer
// AppendEncodeBatch with a pooled buffer (GetBuf/PutBuf).
func EncodeBatch(b Batch) ([]byte, error) {
	size := 1 + 1 + 8 + 2 + 2 // kind, format, epoch, nKeys, nEntries
	for _, k := range b.Keys {
		size += 2 + len(k) + 8
	}
	for _, e := range b.Entries {
		size += 1 + 8 + 2 + len(e.Key) + 4 + len(e.Value) + 2 + (len(e.Window)+7)/8
	}
	return AppendEncodeBatch(make([]byte, 0, size), b)
}

// AppendEncodeBatch serializes b, appending the frame to dst and
// returning the extended buffer. The bytes appended are bit-identical to
// EncodeBatch's output. On error dst is returned unchanged.
func AppendEncodeBatch(dst []byte, b Batch) ([]byte, error) {
	if !isBatchKind(b.Kind) {
		return dst, fmt.Errorf("wire: kind %v is not a batch kind", b.Kind)
	}
	if len(b.Keys) > maxBatch || len(b.Entries) > maxBatch {
		return dst, fmt.Errorf("wire: batch exceeds %d items", maxBatch)
	}
	if len(b.Versions) != 0 && len(b.Versions) != len(b.Keys) {
		return dst, fmt.Errorf("wire: %d version hints for %d keys", len(b.Versions), len(b.Keys))
	}
	for _, k := range b.Keys {
		if len(k) > maxKeyLen {
			return dst, fmt.Errorf("wire: key length %d exceeds %d", len(k), maxKeyLen)
		}
	}
	for _, e := range b.Entries {
		if len(e.Key) > maxKeyLen || len(e.Window) > maxKeyLen {
			return dst, fmt.Errorf("wire: entry field too long for key %q", e.Key)
		}
	}
	out := append(dst, byte(b.Kind), batchFormat)
	out = binary.LittleEndian.AppendUint64(out, b.Epoch)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(b.Keys)))
	for i, k := range b.Keys {
		out = binary.LittleEndian.AppendUint16(out, uint16(len(k)))
		out = append(out, k...)
		hint := uint64(0)
		if i < len(b.Versions) {
			hint = b.Versions[i]
		}
		out = binary.LittleEndian.AppendUint64(out, hint)
	}
	out = binary.LittleEndian.AppendUint16(out, uint16(len(b.Entries)))
	for _, e := range b.Entries {
		flags := byte(0)
		if e.Allocate {
			flags |= 1
		}
		if e.NotModified {
			flags |= 2
		}
		out = append(out, flags)
		out = binary.LittleEndian.AppendUint64(out, e.Version)
		out = binary.LittleEndian.AppendUint16(out, uint16(len(e.Key)))
		out = append(out, e.Key...)
		out = binary.LittleEndian.AppendUint32(out, uint32(len(e.Value)))
		out = append(out, e.Value...)
		out = binary.LittleEndian.AppendUint16(out, uint16(len(e.Window)))
		out = appendPackedWindow(out, e.Window)
	}
	return out, nil
}

// DecodeBatch parses a frame produced by EncodeBatch.
func DecodeBatch(p []byte) (Batch, error) {
	var b Batch
	r := reader{p: p}
	kind, err := r.byte()
	if err != nil {
		return b, err
	}
	b.Kind = Kind(kind)
	if !isBatchKind(b.Kind) {
		return b, fmt.Errorf("wire: kind %d is not a batch kind", kind)
	}
	format, err := r.byte()
	if err != nil {
		return b, err
	}
	if format != batchFormat {
		return b, fmt.Errorf("wire: unsupported batch format %d (want %d)", format, batchFormat)
	}
	if b.Epoch, err = r.uint64(); err != nil {
		return b, err
	}
	nKeys, err := r.uint16()
	if err != nil {
		return b, err
	}
	for i := 0; i < int(nKeys); i++ {
		k, err := r.str16()
		if err != nil {
			return b, err
		}
		hint, err := r.uint64()
		if err != nil {
			return b, err
		}
		b.Keys = append(b.Keys, k)
		b.Versions = append(b.Versions, hint)
	}
	nEntries, err := r.uint16()
	if err != nil {
		return b, err
	}
	for i := 0; i < int(nEntries); i++ {
		var e Entry
		flags, err := r.byte()
		if err != nil {
			return b, err
		}
		if flags > 3 {
			return b, fmt.Errorf("wire: bad entry flags %#x", flags)
		}
		e.Allocate = flags&1 != 0
		e.NotModified = flags&2 != 0
		if e.Version, err = r.uint64(); err != nil {
			return b, err
		}
		if e.Key, err = r.str16(); err != nil {
			return b, err
		}
		if e.Value, err = r.bytes32(); err != nil {
			return b, err
		}
		wlen, err := r.uint16()
		if err != nil {
			return b, err
		}
		packed, err := r.take((int(wlen) + 7) / 8)
		if err != nil {
			return b, err
		}
		e.Window = unpackWindow(packed, int(wlen))
		b.Entries = append(b.Entries, e)
	}
	if !r.done() {
		return b, fmt.Errorf("wire: %d trailing bytes after batch", r.remaining())
	}
	return b, nil
}

// IsBatchFrame reports whether the frame starts with a batch kind, letting
// receivers dispatch between Decode and DecodeBatch.
func IsBatchFrame(p []byte) bool {
	return len(p) > 0 && isBatchKind(Kind(p[0]))
}

// reader is a tiny bounds-checked cursor over a frame.
type reader struct {
	p   []byte
	off int
}

func (r *reader) remaining() int { return len(r.p) - r.off }
func (r *reader) done() bool     { return r.off == len(r.p) }

func (r *reader) take(n int) ([]byte, error) {
	if n < 0 || r.remaining() < n {
		return nil, errTruncated
	}
	out := r.p[r.off : r.off+n]
	r.off += n
	return out, nil
}

func (r *reader) byte() (byte, error) {
	b, err := r.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *reader) uint16() (uint16, error) {
	b, err := r.take(2)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b), nil
}

func (r *reader) uint64() (uint64, error) {
	b, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (r *reader) str16() (string, error) {
	n, err := r.uint16()
	if err != nil {
		return "", err
	}
	b, err := r.take(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func (r *reader) bytes32() ([]byte, error) {
	b, err := r.take(4)
	if err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(b)
	raw, err := r.take(int(n))
	if err != nil {
		return nil, err
	}
	if len(raw) == 0 {
		return nil, nil
	}
	return append([]byte(nil), raw...), nil
}
