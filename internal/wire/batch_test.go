package wire

import (
	"bytes"
	"testing"
	"testing/quick"

	"mobirep/internal/sched"
)

func TestBatchRoundTrip(t *testing.T) {
	batches := []Batch{
		{Kind: KindMultiReadReq, Keys: []string{"a", "b", "long key with spaces"}},
		{Kind: KindMultiReadReq, Keys: nil},
		{Kind: KindMultiReadResp, Entries: []Entry{
			{Key: "a", Value: []byte("v1"), Version: 1},
			{Key: "b", Value: nil, Version: 0, Allocate: true, Window: sched.MustParse("rwr")},
			{Key: "", Value: bytes.Repeat([]byte{7}, 300), Version: 1 << 40},
		}},
		{Kind: KindMultiReadResp},
		{Kind: KindResyncReq, Keys: []string{"a", "c"}, Versions: []uint64{4, 0}},
		{Kind: KindResyncResp, Entries: []Entry{
			{Key: "a", Version: 4, NotModified: true},
			{Key: "c", Value: []byte("fresh"), Version: 9},
		}},
	}
	for i, b := range batches {
		frame, err := EncodeBatch(b)
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if !IsBatchFrame(frame) {
			t.Fatalf("batch %d not recognized", i)
		}
		back, err := DecodeBatch(frame)
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if back.Kind != b.Kind || len(back.Keys) != len(b.Keys) || len(back.Entries) != len(b.Entries) {
			t.Fatalf("batch %d shape: %+v vs %+v", i, back, b)
		}
		for j := range b.Keys {
			if back.Keys[j] != b.Keys[j] {
				t.Fatalf("batch %d key %d", i, j)
			}
			if len(b.Versions) > j && back.Versions[j] != b.Versions[j] {
				t.Fatalf("batch %d version hint %d", i, j)
			}
		}
		for j := range b.Entries {
			w, g := b.Entries[j], back.Entries[j]
			if w.Key != g.Key || w.Version != g.Version || w.Allocate != g.Allocate ||
				w.NotModified != g.NotModified ||
				!bytes.Equal(w.Value, g.Value) || w.Window.String() != g.Window.String() {
				t.Fatalf("batch %d entry %d: %+v vs %+v", i, j, g, w)
			}
		}
	}
}

func TestBatchRejections(t *testing.T) {
	if _, err := EncodeBatch(Batch{Kind: KindReadReq}); err == nil {
		t.Fatal("non-batch kind accepted")
	}
	big := make([]string, maxBatch+1)
	if _, err := EncodeBatch(Batch{Kind: KindMultiReadReq, Keys: big}); err == nil {
		t.Fatal("oversized batch accepted")
	}
	if _, err := DecodeBatch([]byte{byte(KindReadReq)}); err == nil {
		t.Fatal("non-batch frame decoded")
	}
	if _, err := DecodeBatch(nil); err == nil {
		t.Fatal("empty frame decoded")
	}
	// Truncations must all fail.
	frame, err := EncodeBatch(Batch{Kind: KindMultiReadResp, Entries: []Entry{
		{Key: "k", Value: []byte("v"), Version: 3, Allocate: true, Window: sched.MustParse("rrr")},
	}})
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(frame); n++ {
		if _, err := DecodeBatch(frame[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded", n)
		}
	}
	if _, err := DecodeBatch(append(frame, 9)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestIsBatchFrame(t *testing.T) {
	singleton, _ := Encode(Message{Kind: KindReadReq, Key: "x"})
	if IsBatchFrame(singleton) {
		t.Fatal("singleton frame classified as batch")
	}
	if IsBatchFrame(nil) {
		t.Fatal("empty frame classified as batch")
	}
}

func TestBatchProperty(t *testing.T) {
	check := func(keys []string, entryKeys []string, vals [][]byte, alloc []bool) bool {
		if len(keys) > 50 {
			keys = keys[:50]
		}
		for i, k := range keys {
			if len(k) > 100 {
				keys[i] = k[:100]
			}
		}
		b := Batch{Kind: KindMultiReadReq, Keys: keys}
		frame, err := EncodeBatch(b)
		if err != nil {
			return false
		}
		back, err := DecodeBatch(frame)
		if err != nil || len(back.Keys) != len(keys) {
			return false
		}
		for i := range keys {
			if back.Keys[i] != keys[i] {
				return false
			}
		}

		resp := Batch{Kind: KindMultiReadResp}
		for i, k := range entryKeys {
			if i >= 20 {
				break
			}
			if len(k) > 100 {
				k = k[:100]
			}
			e := Entry{Key: k, Version: uint64(i)}
			if i < len(vals) {
				e.Value = vals[i]
			}
			if i < len(alloc) {
				e.Allocate = alloc[i]
			}
			resp.Entries = append(resp.Entries, e)
		}
		frame, err = EncodeBatch(resp)
		if err != nil {
			return false
		}
		back, err = DecodeBatch(frame)
		if err != nil || len(back.Entries) != len(resp.Entries) {
			return false
		}
		for i := range resp.Entries {
			if back.Entries[i].Key != resp.Entries[i].Key ||
				back.Entries[i].Allocate != resp.Entries[i].Allocate ||
				!bytes.Equal(back.Entries[i].Value, resp.Entries[i].Value) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// FuzzDecodeBatch mirrors FuzzDecode for the batch codec.
func FuzzDecodeBatch(f *testing.F) {
	seed, _ := EncodeBatch(Batch{Kind: KindMultiReadResp, Entries: []Entry{
		{Key: "k", Value: []byte("v"), Version: 3, Allocate: true, Window: sched.MustParse("rrrwr")},
	}})
	f.Add(seed)
	f.Add([]byte{byte(KindMultiReadReq), 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, frame []byte) {
		b, err := DecodeBatch(frame)
		if err != nil {
			return
		}
		re, err := EncodeBatch(b)
		if err != nil {
			t.Fatalf("accepted batch failed to re-encode: %v", err)
		}
		if _, err := DecodeBatch(re); err != nil {
			t.Fatalf("re-encoded batch failed to decode: %v", err)
		}
	})
}
