package wire

import (
	"bytes"
	"reflect"
	"testing"

	"mobirep/internal/sched"
)

// perfCorpus spans the codec's shapes: every kind, empty and dense
// fields, byte-boundary windows, and binary payloads.
func perfCorpus() []Message {
	return []Message{
		{Kind: KindReadReq, Key: "k"},
		{Kind: KindReadResp, Key: "key-7", Value: []byte("value"), Version: 42},
		{Kind: KindReadResp, Key: "key-7", Value: []byte("v"), Version: 3,
			Allocate: true, Window: sched.MustParse("rrwrr")},
		{Kind: KindWriteProp, Key: "hot", Value: bytes.Repeat([]byte{0xA5}, 300), Version: 9000},
		{Kind: KindDeleteReq, Key: "gone", Window: sched.MustParse("wwwwwwww")},
		{Kind: KindDeleteReq, Key: "nine-bits", Window: sched.MustParse("rwrwrwrwr")},
		{Kind: KindPing, Version: 1<<63 - 1},
		{Kind: KindPong},
		{Kind: KindWriteProp, Key: "", Value: nil, Version: 0},
	}
}

func TestAppendEncodeMatchesEncode(t *testing.T) {
	for _, m := range perfCorpus() {
		want, err := Encode(m)
		if err != nil {
			t.Fatalf("%v: %v", m.Kind, err)
		}
		if len(want) != EncodedSize(m) {
			t.Errorf("%v: EncodedSize=%d, frame=%d", m.Kind, EncodedSize(m), len(want))
		}
		got, err := AppendEncode(nil, m)
		if err != nil {
			t.Fatalf("%v: %v", m.Kind, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%v: AppendEncode(nil) differs from Encode\n got %x\nwant %x", m.Kind, got, want)
		}
		// Appending after a prefix must leave the prefix intact and
		// produce the same frame bytes.
		prefix := []byte("prefix!")
		ext, err := AppendEncode(append([]byte(nil), prefix...), m)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ext[:len(prefix)], prefix) || !bytes.Equal(ext[len(prefix):], want) {
			t.Errorf("%v: AppendEncode with prefix diverged", m.Kind)
		}
	}
}

func TestAppendEncodeErrorLeavesDstUnchanged(t *testing.T) {
	dst := []byte("stable")
	out, err := AppendEncode(dst, Message{Kind: KindReadReq, Key: string(make([]byte, maxKeyLen+1))})
	if err == nil {
		t.Fatal("oversized key accepted")
	}
	if &out[0] != &dst[0] || string(out) != "stable" {
		t.Fatalf("dst changed on error: %q", out)
	}
}

func TestDecodeBorrowedMatchesDecode(t *testing.T) {
	for _, m := range perfCorpus() {
		frame, err := Encode(m)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Decode(frame)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeBorrowed(frame)
		if err != nil {
			t.Fatalf("%v: DecodeBorrowed rejected a frame Decode accepts: %v", m.Kind, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%v: borrowed decode differs\n got %+v\nwant %+v", m.Kind, got, want)
		}
	}
	// Both reject the same malformed frames.
	bad := [][]byte{
		nil,
		{},
		{1, 0},
		{99, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}, // unknown kind
		{1, 7, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},  // bad flags
		{1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 5, 0, 'k'}, // truncated key
		append(make([]byte, 12), 0xFF),            // trailing garbage window
	}
	for i, p := range bad {
		_, errOwn := Decode(p)
		_, errBor := DecodeBorrowed(p)
		if (errOwn == nil) != (errBor == nil) {
			t.Errorf("bad frame %d: Decode err=%v, DecodeBorrowed err=%v", i, errOwn, errBor)
		}
	}
}

func TestDecodeBorrowedAliasesFrame(t *testing.T) {
	frame, err := Encode(Message{Kind: KindWriteProp, Key: "k", Value: []byte("aaaa"), Version: 1})
	if err != nil {
		t.Fatal(err)
	}
	m, err := DecodeBorrowed(frame)
	if err != nil {
		t.Fatal(err)
	}
	cl := m.Clone()
	// Mutating the frame must show through the borrowed view (that is the
	// point: no copy happened) but never through a Clone.
	frame[len(frame)-3] ^= 0xFF // last value byte (the 2-byte window length trails it)
	if m.Value[3] == 'a' {
		t.Fatal("borrowed Value did not alias the frame — a copy happened")
	}
	if string(cl.Value) != "aaaa" || cl.Key != "k" {
		t.Fatalf("Clone shares memory with the frame: %+v", cl)
	}
	// The 3-index slice must stop appends from growing into the frame.
	if cap(m.Value) != len(m.Value) {
		t.Fatalf("borrowed Value cap %d > len %d: appends could clobber the frame", cap(m.Value), len(m.Value))
	}
}

func TestAppendEncodeBatchMatchesEncodeBatch(t *testing.T) {
	batches := []Batch{
		{Kind: KindMultiReadReq, Keys: []string{"a", "bb", "ccc"}, Versions: []uint64{0, 7, 9}},
		{Kind: KindMultiReadResp, Entries: []Entry{
			{Key: "a", Value: []byte("v1"), Version: 1},
			{Key: "bb", Version: 2, NotModified: true},
			{Key: "ccc", Value: []byte("v3"), Version: 3, Allocate: true, Window: sched.MustParse("rrrwr")},
		}},
		{Kind: KindResyncReq, Keys: []string{"x"}, Versions: []uint64{5}},
		{Kind: KindResyncResp, Entries: []Entry{{Key: "x", Version: 5, NotModified: true}}},
	}
	for _, b := range batches {
		want, err := EncodeBatch(b)
		if err != nil {
			t.Fatal(err)
		}
		got, err := AppendEncodeBatch(nil, b)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%v: AppendEncodeBatch differs from EncodeBatch", b.Kind)
		}
		rt, err := DecodeBatch(got)
		if err != nil {
			t.Fatal(err)
		}
		if len(rt.Entries) != len(b.Entries) || len(rt.Keys) != len(b.Keys) {
			t.Errorf("%v: round trip lost items", b.Kind)
		}
	}
	// Error path leaves dst unchanged.
	dst := []byte("keep")
	out, err := AppendEncodeBatch(dst, Batch{Kind: KindReadReq})
	if err == nil || string(out) != "keep" {
		t.Fatalf("non-batch kind: err=%v out=%q", err, out)
	}
}

// TestAppendEncodeAllocs pins the pooled encode path at zero allocations,
// mirroring the sim-kernel and obs pins: the replica send paths rely on
// AppendEncode into a warm pooled buffer costing nothing.
func TestAppendEncodeAllocs(t *testing.T) {
	m := Message{Kind: KindWriteProp, Key: "hot-key", Value: bytes.Repeat([]byte{7}, 128), Version: 12345}
	buf := GetBuf()
	defer PutBuf(buf)
	// Warm the buffer to capacity once.
	b, err := AppendEncode(buf.B[:0], m)
	if err != nil {
		t.Fatal(err)
	}
	buf.B = b
	allocs := testing.AllocsPerRun(200, func() {
		out, err := AppendEncode(buf.B[:0], m)
		if err != nil {
			t.Fatal(err)
		}
		buf.B = out
	})
	if allocs != 0 {
		t.Fatalf("pooled AppendEncode allocated %.1f times per run, want 0", allocs)
	}
}

// TestDecodeBorrowedAllocs pins the zero-copy decode at zero allocations
// for windowless messages (the hot-path shape: reads, writes, liveness).
func TestDecodeBorrowedAllocs(t *testing.T) {
	frame, err := Encode(Message{Kind: KindWriteProp, Key: "hot-key", Value: bytes.Repeat([]byte{7}, 128), Version: 12345})
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		m, err := DecodeBorrowed(frame)
		if err != nil || m.Kind != KindWriteProp {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("DecodeBorrowed allocated %.1f times per run, want 0", allocs)
	}
}

// TestEncodePooledRoundTripAllocs pins the full steady-state frame cycle —
// get buffer, encode, borrow-decode, release — at zero allocations.
func TestEncodePooledRoundTripAllocs(t *testing.T) {
	m := Message{Kind: KindReadResp, Key: "k", Value: []byte("v"), Version: 2}
	// Warm the pool.
	warm := GetBuf()
	b, _ := AppendEncode(warm.B[:0], m)
	warm.B = b
	PutBuf(warm)
	allocs := testing.AllocsPerRun(200, func() {
		buf := GetBuf()
		out, err := AppendEncode(buf.B[:0], m)
		if err != nil {
			t.Fatal(err)
		}
		buf.B = out
		if _, err := DecodeBorrowed(buf.B); err != nil {
			t.Fatal(err)
		}
		PutBuf(buf)
	})
	if allocs != 0 {
		t.Fatalf("pooled frame cycle allocated %.1f times per run, want 0", allocs)
	}
}
