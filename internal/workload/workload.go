// Package workload generates the request schedules used by the
// experiments: the paper's Poisson read/write model (in both its timed
// form and the equivalent per-request Bernoulli form), the period-drifting
// theta model behind the average-expected-cost measure, and the
// adversarial schedule families that achieve the tight competitive ratios
// of Theorems 4, 11 and 12.
package workload

import (
	"fmt"
	"sort"

	"mobirep/internal/sched"
	"mobirep/internal/stats"
)

// Bernoulli returns a schedule of n requests where each request is
// independently a write with probability theta. Because the paper's
// Poisson processes are memoryless, the sequence of request kinds under
// the timed model is exactly this Bernoulli process with
// theta = lambda_w / (lambda_w + lambda_r); TestPoissonEquivalence
// verifies the equivalence empirically.
func Bernoulli(rng *stats.RNG, theta float64, n int) sched.Schedule {
	s := make(sched.Schedule, n)
	FillBernoulli(rng, theta, s)
	return s
}

// FillBernoulli overwrites every element of s with an independent
// Bernoulli(theta) request, consuming rng exactly like Bernoulli. It
// exists so callers can reuse pooled schedule buffers (sim.GetSchedule)
// instead of allocating a fresh slice per trial.
func FillBernoulli(rng *stats.RNG, theta float64, s sched.Schedule) {
	if theta < 0 || theta > 1 {
		panic(fmt.Sprintf("workload: theta %v outside [0,1]", theta))
	}
	for i := range s {
		if rng.Bernoulli(theta) {
			s[i] = sched.Write
		} else {
			s[i] = sched.Read
		}
	}
}

// TimedOp is a relevant request with its arrival time, produced by the
// Poisson-process generator.
type TimedOp struct {
	// At is the arrival time in model time units.
	At float64
	// Op is the request kind.
	Op sched.Op
}

// PoissonMerged samples the paper's workload model directly: reads arrive
// as a Poisson process with rate lambdaR (at the mobile computer) and
// writes independently with rate lambdaW (at the stationary computer).
// It returns the first n arrivals of the merged process in time order.
func PoissonMerged(rng *stats.RNG, lambdaR, lambdaW float64, n int) []TimedOp {
	if lambdaR < 0 || lambdaW < 0 || lambdaR+lambdaW == 0 {
		panic("workload: rates must be non-negative with a positive sum")
	}
	out := make([]TimedOp, 0, n)
	tr, tw := 0.0, 0.0
	nextRead, nextWrite := 0.0, 0.0
	advanceRead := func() {
		if lambdaR == 0 {
			nextRead = -1
			return
		}
		tr += rng.Exp(lambdaR)
		nextRead = tr
	}
	advanceWrite := func() {
		if lambdaW == 0 {
			nextWrite = -1
			return
		}
		tw += rng.Exp(lambdaW)
		nextWrite = tw
	}
	advanceRead()
	advanceWrite()
	for len(out) < n {
		if nextWrite < 0 || (nextRead >= 0 && nextRead <= nextWrite) {
			out = append(out, TimedOp{At: nextRead, Op: sched.Read})
			advanceRead()
		} else {
			out = append(out, TimedOp{At: nextWrite, Op: sched.Write})
			advanceWrite()
		}
	}
	return out
}

// StripTimes projects a timed trace onto the request-kind sequence that
// the allocation algorithms and cost models consume.
func StripTimes(ops []TimedOp) sched.Schedule {
	s := make(sched.Schedule, len(ops))
	for i, op := range ops {
		s[i] = op.Op
	}
	return s
}

// SortedByTime reports whether the trace is in non-decreasing time order;
// trace tooling uses it to validate loaded files.
func SortedByTime(ops []TimedOp) bool {
	return sort.SliceIsSorted(ops, func(i, j int) bool { return ops[i].At < ops[j].At })
}

// Drifting samples the period model of section 3 that defines the average
// expected cost: time is split into periods, each period draws its own
// theta uniformly from [0, 1], and requests within the period are
// Bernoulli(theta). It returns the concatenated schedule and the theta
// drawn for each period.
func Drifting(rng *stats.RNG, periods, opsPerPeriod int) (sched.Schedule, []float64) {
	if periods <= 0 || opsPerPeriod <= 0 {
		panic("workload: periods and opsPerPeriod must be positive")
	}
	s := make(sched.Schedule, periods*opsPerPeriod)
	thetas := make([]float64, periods)
	for p := range thetas {
		theta := rng.Float64()
		thetas[p] = theta
		FillBernoulli(rng, theta, s[p*opsPerPeriod:(p+1)*opsPerPeriod])
	}
	return s, thetas
}
