package workload

import (
	"math"
	"strings"
	"testing"

	"mobirep/internal/analytic"
	"mobirep/internal/core"
	"mobirep/internal/cost"
	"mobirep/internal/sched"
)

// TestSWkAdversaryAchievesConnBound replays the Theorem 4 family and
// checks the measured ratio converges to k+1 from below.
func TestSWkAdversaryAchievesConnBound(t *testing.T) {
	model := cost.NewConnection()
	for _, k := range []int{1, 3, 5, 9} {
		cycles := 400
		res := MeasureRatio(core.NewSW(k), model, SWkAdversary(k, cycles))
		bound := analytic.CompetitiveSWConn(k)
		// Competitiveness is COST_A <= c*COST_M + b; the family's offline
		// cost is cycles-1 (first cycle free), so one cycle's worth of b.
		if res.OnlineCost > bound*res.OfflineCost+bound+1e-9 {
			t.Fatalf("k=%d: online %v vs %v*%v+b", k, res.OnlineCost, bound, res.OfflineCost)
		}
		if res.Ratio < bound*0.99 || res.Ratio > bound*1.01 {
			t.Fatalf("k=%d: ratio %v not tight against %v", k, res.Ratio, bound)
		}
	}
}

// TestSW1AdversaryAchievesMsgBound replays the Theorem 11 family.
func TestSW1AdversaryAchievesMsgBound(t *testing.T) {
	for _, omega := range []float64{0, 0.25, 0.5, 1} {
		model := cost.NewMessage(omega)
		res := MeasureRatio(core.NewSW(1), model, SW1Adversary(500))
		bound := analytic.CompetitiveSW1Msg(omega)
		if res.OnlineCost > bound*res.OfflineCost+bound+1e-9 {
			t.Fatalf("omega=%v: online %v vs %v*%v+b", omega, res.OnlineCost, bound, res.OfflineCost)
		}
		if res.Ratio < bound*0.99 || res.Ratio > bound*1.01 {
			t.Fatalf("omega=%v: ratio %v not tight against %v", omega, res.Ratio, bound)
		}
	}
}

// TestSWkAdversaryAchievesMsgBound replays the Theorem 12 family.
func TestSWkAdversaryAchievesMsgBound(t *testing.T) {
	for _, k := range []int{3, 5, 9} {
		for _, omega := range []float64{0, 0.4, 1} {
			model := cost.NewMessage(omega)
			res := MeasureRatio(core.NewSW(k), model, SWkAdversary(k, 400))
			bound := analytic.CompetitiveSWMsg(k, omega)
			if res.OnlineCost > bound*res.OfflineCost+bound+1e-9 {
				t.Fatalf("k=%d omega=%v: online %v vs %v*%v+b", k, omega, res.OnlineCost, bound, res.OfflineCost)
			}
			if res.Ratio < bound*0.99 || res.Ratio > bound*1.01 {
				t.Fatalf("k=%d omega=%v: ratio %v not tight against %v", k, omega, res.Ratio, bound)
			}
		}
	}
}

// TestT1AdversaryAchievesBound replays the section 7.1 family.
func TestT1AdversaryAchievesBound(t *testing.T) {
	model := cost.NewConnection()
	for _, m := range []int{1, 3, 7} {
		res := MeasureRatio(core.NewT1(m), model, T1Adversary(m, 400))
		bound := analytic.CompetitiveT1Conn(m)
		if res.OnlineCost > bound*res.OfflineCost+bound+1e-9 {
			t.Fatalf("m=%d: online %v vs %v*%v+b", m, res.OnlineCost, bound, res.OfflineCost)
		}
		if res.Ratio < bound*0.99 || res.Ratio > bound*1.01 {
			t.Fatalf("m=%d: ratio %v vs bound %v", m, res.Ratio, bound)
		}
	}
}

func TestT2AdversaryAchievesBound(t *testing.T) {
	model := cost.NewConnection()
	for _, m := range []int{1, 3, 7} {
		res := MeasureRatio(core.NewT2(m), model, T2Adversary(m, 400))
		bound := analytic.CompetitiveT2Conn(m)
		if res.OnlineCost > bound*res.OfflineCost+bound+1e-9 {
			t.Fatalf("m=%d: online %v vs %v*%v+b", m, res.OnlineCost, bound, res.OfflineCost)
		}
		if res.Ratio < bound*0.99 || res.Ratio > bound*1.01 {
			t.Fatalf("m=%d: ratio %v vs bound %v", m, res.Ratio, bound)
		}
	}
}

// TestStaticsNotCompetitive shows the section 5.3 argument: on all-read
// schedules ST1's cost grows without bound while the offline cost is 0.
func TestStaticsNotCompetitive(t *testing.T) {
	model := cost.NewConnection()
	for _, n := range []int{10, 100, 1000} {
		res := MeasureRatio(core.NewST1(), model, sched.Block(sched.Read, n))
		if !math.IsInf(res.Ratio, 1) {
			t.Fatalf("ST1 on r^%d: ratio %v, want +Inf", n, res.Ratio)
		}
		if res.OnlineCost != float64(n) {
			t.Fatalf("ST1 online cost %v", res.OnlineCost)
		}
		res = MeasureRatio(core.NewST2(), model, sched.Block(sched.Write, n))
		if !math.IsInf(res.Ratio, 1) {
			t.Fatalf("ST2 on w^%d: ratio %v, want +Inf", n, res.Ratio)
		}
	}
}

// TestMeasureRatioZeroZero: a schedule costing nothing for both sides has
// ratio 1 by convention.
func TestMeasureRatioZeroZero(t *testing.T) {
	res := MeasureRatio(core.NewST1(), cost.NewConnection(), sched.Block(sched.Write, 5))
	if res.Ratio != 1 || res.OnlineCost != 0 || res.OfflineCost != 0 {
		t.Fatalf("res = %+v", res)
	}
}

// TestWorstRatioRespectsBounds runs the exhaustive search for small
// schedules and checks no schedule beats the theoretical factor (allowing
// the additive constant by requiring a minimum offline cost).
func TestWorstRatioRespectsBounds(t *testing.T) {
	model := cost.NewConnection()
	for _, k := range []int{1, 3} {
		res := WorstRatio(core.NewSW(k), model, 12, 2)
		bound := analytic.CompetitiveSWConn(k)
		// Finite prefixes include warmup effects; allow the additive
		// constant's worth of slack relative to minOpt=2.
		slack := float64(k+1) / 2
		if res.Ratio > bound+slack {
			t.Fatalf("k=%d: worst ratio %v far exceeds bound %v (schedule %q)",
				k, res.Ratio, bound, res.Schedule)
		}
		if res.Ratio <= 1 {
			t.Fatalf("k=%d: worst ratio %v suspiciously small", k, res.Ratio)
		}
	}
}

// TestWorstRatioFindsAdversarialStructure checks the exhaustive search
// rediscover alternation-heavy schedules for SW1.
func TestWorstRatioFindsAdversarialStructure(t *testing.T) {
	res := WorstRatio(core.NewSW(1), cost.NewConnection(), 10, 2)
	str := res.Schedule.String()
	if !strings.Contains(str, "wr") && !strings.Contains(str, "rw") {
		t.Fatalf("worst schedule %q has no alternation", str)
	}
	if res.Ratio < 1.5 {
		t.Fatalf("SW1 worst ratio %v, expected near 2", res.Ratio)
	}
}

func TestWorstRatioPanicsOnLongLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	WorstRatio(core.NewSW(1), cost.NewConnection(), 21, 1)
}
