package workload

import (
	"mobirep/internal/sched"
	"mobirep/internal/stats"
)

// Bursty workloads. The paper's AVG measure models theta drifting slowly
// and uniformly; real mobile access is burstier — quiet monitoring
// punctuated by update storms (market opens, traffic incidents). The
// Markov-modulated generator captures that: requests are Bernoulli with a
// theta that jumps between two regimes according to a two-state Markov
// chain. The burst experiments measure how window size interacts with
// burst length.

// BurstyConfig parametrizes the two-regime generator.
type BurstyConfig struct {
	// ThetaA and ThetaB are the write probabilities in the two regimes.
	ThetaA, ThetaB float64
	// SwitchProb is the per-request probability of jumping to the other
	// regime; expected regime length is 1/SwitchProb requests.
	SwitchProb float64
}

// MeanTheta returns the long-run write probability: the chain is
// symmetric, so each regime carries weight 1/2.
func (c BurstyConfig) MeanTheta() float64 { return (c.ThetaA + c.ThetaB) / 2 }

// Bursty samples n requests from the Markov-modulated process, returning
// the schedule and the regime index (0 or 1) in force at each request.
func Bursty(rng *stats.RNG, cfg BurstyConfig, n int) (sched.Schedule, []uint8) {
	if cfg.ThetaA < 0 || cfg.ThetaA > 1 || cfg.ThetaB < 0 || cfg.ThetaB > 1 {
		panic("workload: bursty thetas outside [0,1]")
	}
	if cfg.SwitchProb <= 0 || cfg.SwitchProb > 1 {
		panic("workload: switch probability outside (0,1]")
	}
	s := make(sched.Schedule, n)
	regimes := make([]uint8, n)
	regime := uint8(0)
	theta := cfg.ThetaA
	for i := 0; i < n; i++ {
		if rng.Bernoulli(cfg.SwitchProb) {
			regime ^= 1
			if regime == 0 {
				theta = cfg.ThetaA
			} else {
				theta = cfg.ThetaB
			}
		}
		regimes[i] = regime
		if rng.Bernoulli(theta) {
			s[i] = sched.Write
		}
	}
	return s, regimes
}

// CorrelatedKeys models the access pattern the joint-read batching
// experiment needs: each "screen refresh" reads a fixed group of keys
// together (think: every instrument on a watch list), with occasional
// single-key reads mixed in. It returns, per step, the set of key indices
// read (nil means the step is a server write to a random key).
type CorrelatedStep struct {
	// ReadKeys holds the key indices read together; empty means a write.
	ReadKeys []int
	// WriteKey is the key written when ReadKeys is empty.
	WriteKey int
}

// CorrelatedWorkload samples n steps over keyCount keys: with probability
// 1-theta a refresh reads all keys in [0, groupSize), otherwise a write
// hits a uniformly random key.
func CorrelatedWorkload(rng *stats.RNG, keyCount, groupSize, n int, theta float64) []CorrelatedStep {
	if groupSize <= 0 || groupSize > keyCount {
		panic("workload: group size outside [1, keyCount]")
	}
	out := make([]CorrelatedStep, n)
	group := make([]int, groupSize)
	for i := range group {
		group[i] = i
	}
	for i := 0; i < n; i++ {
		if rng.Bernoulli(theta) {
			out[i] = CorrelatedStep{WriteKey: rng.Intn(keyCount)}
		} else {
			out[i] = CorrelatedStep{ReadKeys: group}
		}
	}
	return out
}
