package workload

import (
	"math"
	"testing"

	"mobirep/internal/sched"
	"mobirep/internal/stats"
)

func TestBurstyMeanTheta(t *testing.T) {
	rng := stats.NewRNG(31)
	cfg := BurstyConfig{ThetaA: 0.1, ThetaB: 0.9, SwitchProb: 0.01}
	s, regimes := Bursty(rng, cfg, 200000)
	if len(s) != 200000 || len(regimes) != 200000 {
		t.Fatal("shape wrong")
	}
	if f := s.WriteFraction(); math.Abs(f-cfg.MeanTheta()) > 0.02 {
		t.Fatalf("write fraction %v, want ~%v", f, cfg.MeanTheta())
	}
}

func TestBurstyRegimeLengths(t *testing.T) {
	rng := stats.NewRNG(32)
	cfg := BurstyConfig{ThetaA: 0.2, ThetaB: 0.8, SwitchProb: 0.02}
	_, regimes := Bursty(rng, cfg, 100000)
	// Mean run length of a regime should be ~1/SwitchProb = 50.
	runs, cur := 0, regimes[0]
	for _, r := range regimes {
		if r != cur {
			runs++
			cur = r
		}
	}
	mean := float64(len(regimes)) / float64(runs+1)
	if math.Abs(mean-50) > 10 {
		t.Fatalf("mean regime length %v, want ~50", mean)
	}
}

func TestBurstyPerRegimeTheta(t *testing.T) {
	rng := stats.NewRNG(33)
	cfg := BurstyConfig{ThetaA: 0.1, ThetaB: 0.7, SwitchProb: 0.005}
	s, regimes := Bursty(rng, cfg, 300000)
	var writes, count [2]int
	for i, r := range regimes {
		count[r]++
		if s[i] == sched.Write {
			writes[r]++
		}
	}
	fa := float64(writes[0]) / float64(count[0])
	fb := float64(writes[1]) / float64(count[1])
	if math.Abs(fa-0.1) > 0.02 || math.Abs(fb-0.7) > 0.02 {
		t.Fatalf("regime thetas %v %v", fa, fb)
	}
}

func TestBurstyPanics(t *testing.T) {
	for _, cfg := range []BurstyConfig{
		{ThetaA: -0.1, ThetaB: 0.5, SwitchProb: 0.1},
		{ThetaA: 0.5, ThetaB: 1.1, SwitchProb: 0.1},
		{ThetaA: 0.5, ThetaB: 0.5, SwitchProb: 0},
	} {
		cfg := cfg
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("config %+v did not panic", cfg)
				}
			}()
			Bursty(stats.NewRNG(1), cfg, 10)
		}()
	}
}

func TestCorrelatedWorkload(t *testing.T) {
	rng := stats.NewRNG(34)
	steps := CorrelatedWorkload(rng, 10, 4, 50000, 0.3)
	reads, writes := 0, 0
	for _, st := range steps {
		if len(st.ReadKeys) > 0 {
			reads++
			if len(st.ReadKeys) != 4 {
				t.Fatalf("group size %d", len(st.ReadKeys))
			}
		} else {
			writes++
			if st.WriteKey < 0 || st.WriteKey >= 10 {
				t.Fatalf("write key %d", st.WriteKey)
			}
		}
	}
	if f := float64(writes) / 50000; math.Abs(f-0.3) > 0.01 {
		t.Fatalf("write fraction %v", f)
	}
	_ = reads
}

func TestCorrelatedWorkloadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CorrelatedWorkload(stats.NewRNG(1), 3, 5, 10, 0.5)
}
