package workload

import (
	"math"
	"testing"

	"mobirep/internal/sched"
	"mobirep/internal/stats"
)

func TestBernoulliFraction(t *testing.T) {
	rng := stats.NewRNG(1)
	for _, theta := range []float64{0, 0.25, 0.5, 0.8, 1} {
		s := Bernoulli(rng, theta, 100000)
		if len(s) != 100000 {
			t.Fatalf("len = %d", len(s))
		}
		if f := s.WriteFraction(); math.Abs(f-theta) > 0.01 {
			t.Fatalf("theta=%v: write fraction %v", theta, f)
		}
	}
}

func TestBernoulliPanicsOnBadTheta(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Bernoulli(stats.NewRNG(1), 1.5, 10)
}

func TestPoissonMergedOrderedAndComplete(t *testing.T) {
	rng := stats.NewRNG(2)
	ops := PoissonMerged(rng, 3, 1, 5000)
	if len(ops) != 5000 {
		t.Fatalf("len = %d", len(ops))
	}
	if !SortedByTime(ops) {
		t.Fatal("merged trace out of order")
	}
}

// TestPoissonEquivalence verifies the memorylessness argument of section
// 3: in the merged process, each arrival is a write with probability
// theta = lw/(lw+lr) independently, so the kind sequence matches the
// Bernoulli model.
func TestPoissonEquivalence(t *testing.T) {
	rng := stats.NewRNG(3)
	lr, lw := 2.0, 6.0
	theta := lw / (lw + lr)
	ops := PoissonMerged(rng, lr, lw, 200000)
	s := StripTimes(ops)
	if f := s.WriteFraction(); math.Abs(f-theta) > 0.01 {
		t.Fatalf("write fraction %v, want ~%v", f, theta)
	}
	// Lag-1 independence: P(write | previous write) should also be theta.
	prevWriteAndWrite, prevWrite := 0, 0
	for i := 1; i < len(s); i++ {
		if s[i-1] == sched.Write {
			prevWrite++
			if s[i] == sched.Write {
				prevWriteAndWrite++
			}
		}
	}
	cond := float64(prevWriteAndWrite) / float64(prevWrite)
	if math.Abs(cond-theta) > 0.01 {
		t.Fatalf("P(w|w) = %v, want ~%v (independence)", cond, theta)
	}
}

func TestPoissonMergedRates(t *testing.T) {
	// Arrival count in the merged process over the elapsed time should
	// reflect the combined rate.
	rng := stats.NewRNG(4)
	lr, lw := 5.0, 5.0
	ops := PoissonMerged(rng, lr, lw, 50000)
	elapsed := ops[len(ops)-1].At
	rate := float64(len(ops)) / elapsed
	if math.Abs(rate-(lr+lw)) > 0.3 {
		t.Fatalf("merged rate %v, want ~%v", rate, lr+lw)
	}
}

func TestPoissonMergedOneSided(t *testing.T) {
	rng := stats.NewRNG(5)
	ops := PoissonMerged(rng, 0, 2, 100)
	for _, op := range ops {
		if op.Op != sched.Write {
			t.Fatal("zero read rate produced a read")
		}
	}
	ops = PoissonMerged(rng, 2, 0, 100)
	for _, op := range ops {
		if op.Op != sched.Read {
			t.Fatal("zero write rate produced a write")
		}
	}
}

func TestPoissonMergedPanicsOnBadRates(t *testing.T) {
	for _, rates := range [][2]float64{{0, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("rates %v did not panic", rates)
				}
			}()
			PoissonMerged(stats.NewRNG(1), rates[0], rates[1], 10)
		}()
	}
}

func TestDrifting(t *testing.T) {
	rng := stats.NewRNG(6)
	s, thetas := Drifting(rng, 50, 200)
	if len(s) != 50*200 || len(thetas) != 50 {
		t.Fatalf("shape: %d ops, %d thetas", len(s), len(thetas))
	}
	// Each period's empirical write fraction should track its theta.
	var worst float64
	for p, theta := range thetas {
		period := s[p*200 : (p+1)*200]
		d := math.Abs(period.WriteFraction() - theta)
		if d > worst {
			worst = d
		}
	}
	if worst > 0.15 {
		t.Fatalf("worst per-period deviation %v", worst)
	}
	// Thetas should be roughly uniform: mean near 1/2.
	var sum float64
	for _, theta := range thetas {
		sum += theta
	}
	if mean := sum / 50; math.Abs(mean-0.5) > 0.15 {
		t.Fatalf("theta mean %v", mean)
	}
}

func TestDriftingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Drifting(stats.NewRNG(1), 0, 10)
}

func TestAdversaryShapes(t *testing.T) {
	// SWkAdversary for k=3 (n=1): cycle r^2 w^2.
	s := SWkAdversary(3, 2)
	if s.String() != "rrwwrrww" {
		t.Fatalf("SWkAdversary(3,2) = %q", s)
	}
	if got := SW1Adversary(3).String(); got != "wrwrwr" {
		t.Fatalf("SW1Adversary(3) = %q", got)
	}
	if got := T1Adversary(3, 2).String(); got != "rrrwrrrw" {
		t.Fatalf("T1Adversary(3,2) = %q", got)
	}
	if got := T2Adversary(2, 2).String(); got != "wwrwwr" {
		t.Fatalf("T2Adversary(2,2) = %q", got)
	}
}

func TestAdversaryPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"even k": func() { SWkAdversary(4, 1) },
		"T1 m=0": func() { T1Adversary(0, 1) },
		"T2 m=0": func() { T2Adversary(0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

// TestFillBernoulliMatchesBernoulli pins the buffer-reusing generator to
// the allocating one: same seed, same schedule, and every element of a
// dirty buffer overwritten.
func TestFillBernoulliMatchesBernoulli(t *testing.T) {
	const n = 4096
	want := Bernoulli(stats.NewRNG(5), 0.3, n)
	dirty := make(sched.Schedule, n)
	for i := range dirty {
		dirty[i] = sched.Write
	}
	FillBernoulli(stats.NewRNG(5), 0.3, dirty)
	for i := range want {
		if dirty[i] != want[i] {
			t.Fatalf("FillBernoulli diverges from Bernoulli at %d", i)
		}
	}
}

// TestDriftingSingleAllocationLayout checks the preallocated period
// layout: each period's slice is Bernoulli(theta_p) under the recorded
// theta, generated in place with no append growth.
func TestDriftingSingleAllocationLayout(t *testing.T) {
	const periods, ops = 7, 100
	s, thetas := Drifting(stats.NewRNG(9), periods, ops)
	if len(s) != periods*ops || cap(s) != periods*ops {
		t.Fatalf("len=%d cap=%d, want both %d", len(s), cap(s), periods*ops)
	}
	// Re-derive the schedule from the recorded thetas with a fresh RNG
	// stream walked the same way.
	rng := stats.NewRNG(9)
	for p := 0; p < periods; p++ {
		if got := rng.Float64(); got != thetas[p] {
			t.Fatalf("period %d theta %v, want %v", p, thetas[p], got)
		}
		for i := 0; i < ops; i++ {
			want := sched.Read
			if rng.Bernoulli(thetas[p]) {
				want = sched.Write
			}
			if s[p*ops+i] != want {
				t.Fatalf("period %d op %d diverges", p, i)
			}
		}
	}
}
