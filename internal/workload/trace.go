package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"mobirep/internal/sched"
)

// Timed-trace serialization for the mobirep-trace tool: a line-oriented
// text format, one "<time> <r|w>" pair per line, with '#' comments.

// WriteTimed writes the trace in the text format read by ReadTimed.
func WriteTimed(w io.Writer, ops []TimedOp) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "# mobirep timed trace v1"); err != nil {
		return err
	}
	for _, op := range ops {
		if _, err := fmt.Fprintf(bw, "%g %s\n", op.At, op.Op); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTimed parses a trace written by WriteTimed. Blank lines and lines
// starting with '#' are skipped. It rejects traces that are not in time
// order, since the model requires serialized requests.
func ReadTimed(r io.Reader) ([]TimedOp, error) {
	var out []TimedOp
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("workload: trace line %d: want \"<time> <r|w>\", got %q", lineNo, line)
		}
		at, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: bad time %q: %v", lineNo, fields[0], err)
		}
		ops, err := sched.Parse(fields[1])
		if err != nil || len(ops) != 1 {
			return nil, fmt.Errorf("workload: trace line %d: bad op %q", lineNo, fields[1])
		}
		out = append(out, TimedOp{At: at, Op: ops[0]})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !SortedByTime(out) {
		return nil, fmt.Errorf("workload: trace is not in time order")
	}
	return out, nil
}
