package workload

import (
	"bytes"
	"strings"
	"testing"

	"mobirep/internal/sched"
	"mobirep/internal/stats"
)

func TestTimedTraceRoundTrip(t *testing.T) {
	rng := stats.NewRNG(9)
	ops := PoissonMerged(rng, 1, 2, 500)
	var buf bytes.Buffer
	if err := WriteTimed(&buf, ops); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTimed(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(ops) {
		t.Fatalf("len = %d, want %d", len(back), len(ops))
	}
	for i := range ops {
		if back[i].Op != ops[i].Op {
			t.Fatalf("op %d mismatch", i)
		}
		if d := back[i].At - ops[i].At; d > 1e-12 || d < -1e-12 {
			t.Fatalf("time %d: %v vs %v", i, back[i].At, ops[i].At)
		}
	}
}

func TestReadTimedSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n\n0.5 r\n# middle\n1.5 w\n"
	ops, err := ReadTimed(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 2 || ops[0].Op != sched.Read || ops[1].Op != sched.Write {
		t.Fatalf("ops = %+v", ops)
	}
}

func TestReadTimedErrors(t *testing.T) {
	cases := map[string]string{
		"bad field count": "0.5 r extra\n",
		"bad time":        "abc r\n",
		"bad op":          "0.5 x\n",
		"two ops":         "0.5 rw\n",
		"out of order":    "2 r\n1 w\n",
	}
	for name, in := range cases {
		if _, err := ReadTimed(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestWriteTimedEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTimed(&buf, nil); err != nil {
		t.Fatal(err)
	}
	ops, err := ReadTimed(&buf)
	if err != nil || len(ops) != 0 {
		t.Fatalf("ops=%v err=%v", ops, err)
	}
}
