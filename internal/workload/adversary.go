package workload

import (
	"math"

	"mobirep/internal/core"
	"mobirep/internal/cost"
	"mobirep/internal/offline"
	"mobirep/internal/sched"
)

// Adversarial schedule families. Each family forces the named online
// algorithm to its tight competitive ratio against the ideal offline
// comparator; the competitiveness experiments replay them and measure the
// achieved ratio converging to the factor as cycles grow.

// SWkAdversary returns (r^(n+1) w^(n+1))^cycles for k = 2n+1. Each cycle
// makes SWk flip its allocation twice, paying k+1 connections (Theorem 4)
// or (1+omega/2)(k+1)+omega message cost (Theorem 12), while the offline
// optimum re-allocates once per cycle for cost 1.
func SWkAdversary(k, cycles int) sched.Schedule {
	if k <= 0 || k%2 == 0 {
		panic("workload: SWkAdversary needs odd positive k")
	}
	n := (k - 1) / 2
	cycle := sched.Concat(sched.Block(sched.Read, n+1), sched.Block(sched.Write, n+1))
	return cycle.Repeat(cycles)
}

// SW1Adversary returns (w r)^cycles: under SW1 every write finds a copy
// (delete-request, omega) and every read finds none (remote read,
// 1+omega), so each cycle costs 1+2*omega while the offline optimum keeps
// the copy and pays only the propagation, 1 (Theorem 11). In the
// connection model the same family yields the ratio 2 = k+1 of Theorem 4.
func SW1Adversary(cycles int) sched.Schedule {
	return sched.MustParse("wr").Repeat(cycles)
}

// T1Adversary returns (r^m w)^cycles: T1m pays for all m reads (the m-th
// re-allocates) plus the write that revokes the copy, m+1 connections per
// cycle, while the offline optimum pays 1 — the (m+1)-competitiveness of
// section 7.1 is tight on this family.
func T1Adversary(m, cycles int) sched.Schedule {
	if m <= 0 {
		panic("workload: T1Adversary needs positive m")
	}
	cycle := sched.Concat(sched.Block(sched.Read, m), sched.Block(sched.Write, 1))
	return cycle.Repeat(cycles)
}

// T2Adversary returns (w^m r)^cycles, the mirror family for T2m: all m
// writes are propagated (the m-th deallocates) and the read that follows
// is remote, m+1 connections per cycle against an offline cost of 1.
func T2Adversary(m, cycles int) sched.Schedule {
	if m <= 0 {
		panic("workload: T2Adversary needs positive m")
	}
	cycle := sched.Concat(sched.Block(sched.Write, m), sched.Block(sched.Read, 1))
	return cycle.Repeat(cycles)
}

// RatioResult reports a competitive-ratio measurement.
type RatioResult struct {
	// Schedule is the schedule achieving the ratio.
	Schedule sched.Schedule
	// OnlineCost is the policy's cost on the schedule.
	OnlineCost float64
	// OfflineCost is the ideal comparator's cost.
	OfflineCost float64
	// Ratio is OnlineCost / OfflineCost (Inf when OfflineCost is 0 and
	// OnlineCost is not).
	Ratio float64
}

// MeasureRatio replays s through a fresh run of policy p under model m and
// compares with the ideal offline comparator.
func MeasureRatio(p core.Policy, m cost.Model, s sched.Schedule) RatioResult {
	p.Reset()
	online := 0.0
	for _, op := range s {
		online += m.StepCost(p.Apply(op))
	}
	opt := offline.Cost(s, offline.Ideal())
	ratio := math.Inf(1)
	if opt > 0 {
		ratio = online / opt
	} else if online == 0 {
		ratio = 1
	}
	return RatioResult{Schedule: s, OnlineCost: online, OfflineCost: opt, Ratio: ratio}
}

// WorstRatio exhaustively searches all 2^length schedules of the given
// length and returns the one maximizing the policy's cost relative to the
// ideal offline cost, ignoring schedules whose offline cost is below
// minOpt (the additive constant in the competitiveness definition makes
// ratios over near-zero offline costs meaningless). It is exponential and
// intended for length <= 20.
func WorstRatio(p core.Policy, m cost.Model, length int, minOpt float64) RatioResult {
	if length > 20 {
		panic("workload: WorstRatio limited to length 20")
	}
	best := RatioResult{Ratio: -1}
	s := make(sched.Schedule, length)
	for mask := 0; mask < 1<<length; mask++ {
		for i := range s {
			if mask>>i&1 == 1 {
				s[i] = sched.Write
			} else {
				s[i] = sched.Read
			}
		}
		opt := offline.Cost(s, offline.Ideal())
		if opt < minOpt {
			continue
		}
		p.Reset()
		online := 0.0
		for _, op := range s {
			online += m.StepCost(p.Apply(op))
		}
		if opt > 0 && online/opt > best.Ratio {
			cp := make(sched.Schedule, length)
			copy(cp, s)
			best = RatioResult{Schedule: cp, OnlineCost: online, OfflineCost: opt, Ratio: online / opt}
		}
	}
	return best
}
