package mobirep_test

import (
	"fmt"

	"mobirep"
)

// The paper's core question: at a known read/write mix, which allocation
// method minimizes communication?
func ExampleBestExpectedMsg() {
	// A traffic segment updated often relative to how often it is read,
	// over a network where control messages cost 30% of a data message.
	fmt.Println(mobirep.BestExpectedMsg(0.85, 0.3)) // theta, omega
	fmt.Println(mobirep.BestExpectedMsg(0.05, 0.3))
	fmt.Println(mobirep.BestExpectedMsg(0.50, 0.3))
	// Output:
	// ST1
	// ST2
	// SW1
}

// Running a policy over an explicit schedule and pricing it.
func ExampleRunPolicy() {
	s, _ := mobirep.ParseSchedule("rrrww")
	steps := mobirep.RunPolicy(mobirep.NewSW(3), s)
	fmt.Printf("connections: %.0f\n", mobirep.TotalCost(mobirep.ConnectionModel(), steps))
	fmt.Printf("messages:    %.1f\n", mobirep.TotalCost(mobirep.MessageModel(0.5), steps))
	// Output:
	// connections: 4
	// messages:    5.5
}

// The closed forms are exported directly; here equation 6 and the paper's
// "k=15 is within 6% of the optimum" claim.
func ExampleAvgSWConn() {
	avg := mobirep.AvgSWConn(15)
	fmt.Printf("AVG_SW15 = %.4f (%.1f%% above the optimum 0.25)\n", avg, 100*(avg/0.25-1))
	// Output:
	// AVG_SW15 = 0.2647 (5.9% above the optimum 0.25)
}

// Measuring a competitive ratio against the ideal offline algorithm on
// the tight adversarial family of Theorem 4.
func ExampleMeasureRatio() {
	res := mobirep.MeasureRatio(mobirep.NewSW(3), mobirep.ConnectionModel(),
		mobirep.SWkAdversary(3, 10000))
	fmt.Printf("SW3 ratio %.2f (bound %d)\n", res.Ratio, 4)
	// Output:
	// SW3 ratio 4.00 (bound 4)
}

// The exact Markov oracle computes expected costs for any finite-state
// policy with no closed form and no simulation noise.
func ExampleExactExpected() {
	exact, err := mobirep.ExactExpected(
		mobirep.NewSW(9).(mobirep.EnumerablePolicy), 0.3, mobirep.ConnectionModel())
	if err != nil {
		panic(err)
	}
	formula := mobirep.ExpSWConn(9, 0.3)
	fmt.Printf("exact %.6f, equation 5 %.6f\n", exact, formula)
	// Output:
	// exact 0.339523, equation 5 0.339523
}

// Hindsight analysis: which policy should have served this trace?
func ExampleCompare() {
	rng := mobirep.NewRNG(42)
	trace := mobirep.BernoulliSchedule(rng, 0.2, 100000) // read-heavy
	candidates := []mobirep.Factory{
		func() mobirep.Policy { return mobirep.NewST1() },
		func() mobirep.Policy { return mobirep.NewST2() },
		func() mobirep.Policy { return mobirep.NewSW(9) },
	}
	cmp := mobirep.Compare(candidates, mobirep.ConnectionModel(), trace)
	fmt.Println("winner:", cmp.Best().Name)
	// Output:
	// winner: ST2
}

// The full distributed protocol in-process: a stationary computer, a
// mobile computer, and the metered wireless traffic between them.
func ExampleNewServer() {
	scLink, mcLink := mobirep.NewMemPair()
	server, _ := mobirep.NewServer(mobirep.NewStore(), mobirep.SWMode(3))
	session := server.Attach(scLink)
	client, _ := mobirep.NewClient(mcLink, mobirep.SWMode(3))

	server.Write("x", []byte("hello"))
	client.Read("x") // remote
	client.Read("x") // remote; allocates under SW3
	client.Read("x") // local

	total := session.Meter().Snapshot().Add(client.Meter().Snapshot())
	fmt.Printf("data=%d control=%d copy=%v\n",
		total.DataMsgs, total.ControlMsgs, client.HasCopy("x"))
	// Output:
	// data=2 control=2 copy=true
}

// Joint reads fetch many items in one connection (section 7.2).
func ExampleClient_ReadMany() {
	scLink, mcLink := mobirep.NewMemPair()
	server, _ := mobirep.NewServer(mobirep.NewStore(), mobirep.Static1Mode())
	session := server.Attach(scLink)
	client, _ := mobirep.NewClient(mcLink, mobirep.Static1Mode())
	for _, k := range []string{"a", "b", "c", "d"} {
		server.Write(k, []byte(k))
	}

	items, _ := client.ReadMany([]string{"a", "b", "c", "d"})
	total := session.Meter().Snapshot().Add(client.Meter().Snapshot())
	fmt.Printf("%d items in %d data + %d control messages\n",
		len(items), total.DataMsgs, total.ControlMsgs)
	// Output:
	// 4 items in 1 data + 1 control messages
}

// Multi-object allocation (section 7.2): joint operations couple the
// per-object decisions.
func ExampleOptimalStaticAllocation() {
	x, y := mobirep.NewObjectSet(0), mobirep.NewObjectSet(1)
	freqs := mobirep.FreqTable{
		{Kind: mobirep.MultiRead, Objects: x | y}: 10, // joint reads dominate
		{Kind: mobirep.MultiWrite, Objects: y}:    3,
		{Kind: mobirep.MultiRead, Objects: x}:     2,
	}
	alloc, cost := mobirep.OptimalStaticAllocation(freqs, 2, mobirep.MultiConnModel())
	fmt.Printf("cache %v at %.3f/op\n", alloc, cost)
	// Output:
	// cache {0,1} at 0.200/op
}
