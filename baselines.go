package mobirep

import (
	"mobirep/internal/analytic"
	"mobirep/internal/core"
)

// Baseline policies and the exact Markov analysis layer.

// NewCacheInvalidate returns the callback-invalidation caching baseline of
// the CDVM literature the paper compares against in section 8.2. Its
// allocation behaviour is provably identical to SW1.
func NewCacheInvalidate() Policy { return core.NewCacheInvalidate() }

// NewEWMA returns an estimator-based baseline: it tracks the write
// fraction with an exponentially weighted moving average (smoothing factor
// alpha in (0,1]) and holds a copy while the estimate is below 1/2. Unlike
// the window family it has no competitive bound.
func NewEWMA(alpha float64) Policy { return core.NewEWMA(alpha) }

// NewEWMABand returns the EWMA baseline with a hysteresis band: the copy
// is dropped only above high and re-acquired only below low.
func NewEWMABand(alpha, low, high float64) Policy { return core.NewEWMABand(alpha, low, high) }

// NewEvenSW returns the tie-holding sliding window with an even window
// size — the variant the paper's "k is odd" assumption excludes, used by
// the window-parity ablation.
func NewEvenSW(k int) Policy { return core.NewEvenSW(k) }

// NewAdaptiveSW returns the adaptive window-size policy: the window grows
// toward kMax during stable read/write mixes (approaching the large
// window's average cost) and collapses toward kMin under rapid allocation
// flips (retaining the small window's worst-case behaviour). Both bounds
// must be odd.
func NewAdaptiveSW(kMin, kMax int) Policy { return core.NewAdaptiveSW(kMin, kMax) }

// EnumerablePolicy is a policy whose finite state space the exact Markov
// analysis can explore.
type EnumerablePolicy = core.Enumerable

// ExactExpected returns the exact long-run expected cost per request of
// any finite-state policy at write probability theta, computed by state
// enumeration and stationary analysis — no closed form required. All the
// built-in policies except EWMA implement EnumerablePolicy.
func ExactExpected(p EnumerablePolicy, theta float64, m CostModel) (float64, error) {
	return analytic.MarkovExpected(p, theta, m)
}

// TransientExpected returns the exact expected cost of each of the first
// steps requests from the policy's cold-start state — the convergence
// curve toward the steady state.
func TransientExpected(p EnumerablePolicy, theta float64, m CostModel, steps int) ([]float64, error) {
	c, err := analytic.BuildChain(p, theta, m, 0)
	if err != nil {
		return nil, err
	}
	return c.TransientCosts(steps), nil
}

// ExactCompetitiveRatio solves the policy-vs-adversary mean-payoff game
// and returns the policy's exact competitive ratio against the ideal
// offline algorithm, to within tol (1e-9 when tol <= 0). It returns +Inf
// when the policy is not competitive at any factor up to limit (64 when
// limit <= 0) — the statics, for example. Works for any finite-state
// policy; the paper's Theorems 4, 11 and 12 fall out as special cases.
func ExactCompetitiveRatio(p EnumerablePolicy, m CostModel, limit, tol float64) (float64, error) {
	return analytic.CompetitiveRatio(p, m, limit, tol)
}

// VerifyCompetitive checks, exactly, whether the policy is c-competitive
// under the model — cheaper than the full ratio search when only a bound
// needs confirming.
func VerifyCompetitive(p EnumerablePolicy, m CostModel, c float64) (bool, error) {
	return analytic.VerifyCompetitive(p, m, c)
}

// ExactBurstyExpected returns the exact expected cost per request of a
// finite-state policy under the two-regime Markov-modulated workload.
func ExactBurstyExpected(p EnumerablePolicy, cfg BurstyConfig, m CostModel) (float64, error) {
	return analytic.BurstyExpected(p, analytic.BurstyParams(cfg), m)
}

// WorstSchedule extracts an adversarial cycle from the competitiveness
// game at factor c: repeating the returned schedule forces the policy's
// cost above c times the offline optimum (its gain per request is the
// second result). Call it with c slightly below ExactCompetitiveRatio to
// obtain the policy's tight adversarial family — the solver re-invents
// the paper's hand-built (r^(n+1) w^(n+1)) cycles this way.
func WorstSchedule(p EnumerablePolicy, m CostModel, c float64) (Schedule, float64, error) {
	return analytic.WorstSchedule(p, m, c)
}
