#!/bin/sh
# ci.sh — the repo's full verification gate. Everything here must pass
# before merging: static checks, the full test suite under the race
# detector, and a quick-mode end-to-end run of the experiment CLI.
set -eux

cd "$(dirname "$0")"

go vet ./...
go build ./...
go test -race ./...

# End-to-end: regenerate every experiment table in quick mode and prove the
# parallel engine reproduces the sequential tables byte-for-byte.
out_seq=$(mktemp)
out_par=$(mktemp)
trap 'rm -f "$out_seq" "$out_par"' EXIT
go run ./cmd/mobirep-bench -quick -seed 1994 -parallel 1 |
    sed 's/completed in [^]]*\]/completed]/' > "$out_seq"
go run ./cmd/mobirep-bench -quick -seed 1994 -parallel 8 |
    sed 's/completed in [^]]*\]/completed]/' > "$out_par"
diff "$out_seq" "$out_par"

echo "ci.sh: all checks passed"
