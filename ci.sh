#!/bin/sh
# ci.sh — the repo's full verification gate. Everything here must pass
# before merging: static checks, the full test suite under the race
# detector, and a quick-mode end-to-end run of the experiment CLI.
set -eux

cd "$(dirname "$0")"

go vet ./...
test -z "$(gofmt -l .)"
go build ./...
go test -race ./...

# Protocol conformance under fault injection: a focused race-detector
# slice, then fixed-seed smoke replays of frozen regression schedules —
# one per generator generation — to prove seed replay works end to end.
# "ci.sh -long" explores far deeper.
go test -race -run 'Conformance' -count=1 ./internal/replica/
go test ./internal/replica/ -run 'TestConformanceExplorer$' -conformance.seed=35 -conformance.gen=1 -count=1
go test ./internal/replica/ -run 'TestConformanceExplorer$' -conformance.seed=3 -count=1
if [ "${1:-}" = "-long" ]; then
    go test ./internal/replica/ -run 'TestConformanceExplorer$' -conformance.schedules=20000 -count=1
fi

# Recovery slice: the chaos soak (supervised client vs crashing links),
# the supervisor unit tests, and the accept-loop detach contract, all
# under the race detector and rerun to shake out schedule luck.
go test -race -count=2 -run 'TestChaosSoakRecovery|TestSupervisor|TestServerCloseCallbackDetachesSession|Resync|Reattach|TestTCPLinkCloseDetaches' ./internal/replica/

# Observability slice: the registry hammer under race, the zero-alloc
# pins on the record path and the fused kernels, then a live server with
# -debug-addr whose /metrics and /healthz must answer over real HTTP.
go test -race -count=1 -run 'TestRegistryConcurrentUse|TestTracerConcurrentRecord' ./internal/obs/
go test -count=1 -run 'TestObsRecordPathZeroAllocs' ./internal/obs/
go test -count=1 -run 'TestFusedKernelZeroAllocs' .
obs_log=$(mktemp)
go build -o /tmp/mobirep-server-ci ./cmd/mobirep-server
/tmp/mobirep-server-ci -listen 127.0.0.1:0 -debug-addr 127.0.0.1:0 > "$obs_log" &
obs_pid=$!
for _ in $(seq 1 50); do
    grep -q 'debug endpoints on' "$obs_log" && break
    sleep 0.1
done
obs_url=$(sed -n 's|.*debug endpoints on \(http://[^/]*\)/metrics.*|\1|p' "$obs_log")
test -n "$obs_url"
curl -fsS "$obs_url/metrics" | grep -q '^mobirep_replica_sessions '
curl -fsS "$obs_url/metrics" | grep -q '^# TYPE mobirep_transport_frames_total counter'
curl -fsS "$obs_url/healthz" | grep -q '"status":"ok"'
kill "$obs_pid"
rm -f "$obs_log" /tmp/mobirep-server-ci

# Throughput slice: the zero-alloc pins on the pooled encode / borrowed
# decode hot paths, codec equivalence (pooled and appending forms must be
# bit-identical to the legacy calls), the coalescing transport edge cases,
# the SC fan-out sharing proof, and the conformance explorer again with
# every link coalescing — byte-stream batching must be invisible to the
# protocol. E23 then runs end to end in quick mode.
go test -count=1 -run 'TestAppendEncode|TestDecodeBorrowed|TestEncodePooledRoundTripAllocs' ./internal/wire/
go test -race -count=1 -run 'TestTCPCoalesced|TestTCPMaxFrameBoundary|TestTCPFlushConcurrentClose|TestTCPWriteFailureShutsLinkDown|TestTCPReceiveAllocsSteadyState' ./internal/transport/
go test -count=1 -run 'TestServerSendPathAllocs|TestWriteFanOut' ./internal/replica/
go test ./internal/replica/ -run 'TestConformanceExplorer$' -conformance.seed=3 -conformance.coalesce -count=1
if [ "${1:-}" = "-long" ]; then
    go test ./internal/replica/ -run 'TestConformanceExplorer$' -conformance.schedules=100000 -conformance.coalesce -count=1
fi
go run ./cmd/mobirep-bench -quick -trajectory-dir '' E23 > /dev/null

# Shard slice: routing goldens and uniformity, the session+keys-same-shard
# invariant, the shard-boundary reaper contract, and the attach/detach
# churn hammer under the race detector; then the conformance explorer
# pinned to one shard and to eight — the sharded core must be
# indistinguishable from the single-map server at every count. Finally a
# load smoke: 5k chaos-wrapped sessions driven for 30s must attach at
# >= 500 sessions/sec. "ci.sh -long" runs the full 100k-schedule explorer
# at shard counts 1, 2 and 8 — the PR's acceptance bar.
go test -race -count=1 -run 'TestSessionShardGoldens|TestKeyShardGoldens|TestShardRouting|TestNewServerShardsValidation|TestSessionKeysSameShardInvariant|TestExpireIdleShardBoundaries|TestShardChurnHammer' ./internal/replica/
go test ./internal/replica/ -run 'TestConformanceExplorer$' -conformance.shards=1 -count=1
go test ./internal/replica/ -run 'TestConformanceExplorer$' -conformance.shards=8 -count=1
go build -o /tmp/mobirep-load-ci ./cmd/mobirep-load
/tmp/mobirep-load-ci -sessions 5000 -duration 30s -floor-sessions-per-sec 500
rm -f /tmp/mobirep-load-ci
if [ "${1:-}" = "-long" ]; then
    for n in 1 2 8; do
        go test ./internal/replica/ -run 'TestConformanceExplorer$' \
            -conformance.schedules=100000 -conformance.shards="$n" -count=1 -timeout 120m
    done
fi

# Overload slice: the slow-consumer and write-deadline kills plus the
# Send-after-Close parity contract under race, the admission/eviction/
# shedding unit tests (including the supervisor honoring Busy retry-after
# hints), the overload engine's own tests, then a 30s 2x-capacity smoke:
# every refused attach must be answered with Busy (the binary exits
# nonzero otherwise), healthy-fleet p99 stays under 100ms, and no more
# than 8 goroutines may survive teardown.
go test -race -count=1 -run 'TestTCPWriteTimeoutKillsStalledLink|TestTCPQueueLimitKillsSlowConsumer|TestSendAfterCloseParity|TestTCPSlowConsumerHammer|TestChaosStall|TestParseChaosSpecStallKeys' ./internal/transport/
go test -race -count=1 -run 'TestTryAttach|TestEvictSendsBusyThenDetaches|TestMemBytesAccountsSessionsAndItems|TestShedToBudgetEvictsIdleLongestFirst|TestSupervisorHonorsBusyRetryAfter' ./internal/replica/
go test -race -count=1 -run 'TestRunOverload|TestPercentileNearestRank' ./internal/load/
go build -o /tmp/mobirep-load-ci ./cmd/mobirep-load
/tmp/mobirep-load-ci -overload -capacity 3000 -factor 2 -duration 30s \
    -mem-soft-limit $((64 << 20)) -ceil-p99 100ms -max-goroutine-growth 8
rm -f /tmp/mobirep-load-ci

# Durability slice: the db layer (log format, epochs, group commit,
# CrashFS, errfs fault injection, Compact kill-points) under the race
# detector; the end-to-end restart kill-point sweeps (no acknowledged
# write lost, no client-visible rollback, epoch fences mandatory — the
# fencing contract is asserted inside them); a 30s kill-and-restart soak
# under live traffic; and
# the gen-4 (crash+restart) conformance explorer pinned to one shard and
# to eight. "ci.sh -long" already explores 100k schedules above — gen 4
# is the default generator, so those runs cover crash schedules too.
go test -race -count=1 ./internal/db/
go test -race -count=1 -run 'TestRestartKillPointSweep' ./internal/replica/
go test -race -count=1 -run 'TestRestartSoak' ./internal/load/
go test ./internal/load/ -count=1 -run 'TestRestartSoakDurable' -restart.soak=30s -timeout 10m
go test ./internal/replica/ -run 'TestConformanceExplorer$' -conformance.gen=4 -conformance.shards=1 -count=1
go test ./internal/replica/ -run 'TestConformanceExplorer$' -conformance.gen=4 -conformance.shards=8 -count=1

# Tree slice: the replica-tree conformance sweep (3-node chains through
# 7-node binary trees with handoffs, relay crashes and root power cuts)
# pinned to one shard and to eight, frozen tree regression seeds, the
# handoff race test under the race detector, and a 30s small-tree load
# smoke with motion: 5k MCs over a 7-station binary tree must attach at
# >= 500 sessions/sec, read error-free, and land every handoff warm (the
# binary exits nonzero on any cold arrival).
go test ./internal/tree/ -run 'TestTreeConformanceSweep$' -tree.shards=1 -count=1
go test ./internal/tree/ -run 'TestTreeConformanceSweep$' -tree.shards=8 -count=1
go test ./internal/tree/ -run 'TestTreeConformanceRegressions' -count=1
go test -race -count=1 -run 'TestHandoffUnderWrites' ./internal/tree/
go build -o /tmp/mobirep-load-ci ./cmd/mobirep-load
/tmp/mobirep-load-ci -tree -stations 7 -sessions 5000 -mode ST2 -placement T1:2 \
    -handoff-every 100 -duration 30s -floor-sessions-per-sec 500
rm -f /tmp/mobirep-load-ci

# End-to-end: regenerate every experiment table in quick mode and prove the
# parallel engine reproduces the sequential tables byte-for-byte. E23, E24,
# E25, E26 and E27 are timing-based (throughput and latency numbers change
# run to run), so they are excluded from the determinism diff; E23 ran
# standalone above, E24's engine is covered by the load smoke in the shard
# slice, E25's by the overload smoke, and E27's by the tree slice.
out_seq=$(mktemp)
out_par=$(mktemp)
trap 'rm -f "$out_seq" "$out_par"' EXIT
go run ./cmd/mobirep-bench -quick -seed 1994 -parallel 1 -skip E23,E24,E25,E26,E27 |
    sed 's/completed in [^]]*\]/completed]/' > "$out_seq"
go run ./cmd/mobirep-bench -quick -seed 1994 -parallel 8 -skip E23,E24,E25,E26,E27 |
    sed 's/completed in [^]]*\]/completed]/' > "$out_par"
diff "$out_seq" "$out_par"

echo "ci.sh: all checks passed"
