package mobirep

import (
	"mobirep/internal/db"
	"mobirep/internal/replica"
	"mobirep/internal/transport"
)

// The distributed protocol of section 4, re-exported: a stationary-
// computer Server over a versioned store and a mobile-computer Client with
// a local cache, connected by an in-memory or TCP link.

// Server is the stationary computer endpoint.
type Server = replica.Server

// Client is the mobile computer endpoint.
type Client = replica.Client

// Mode selects the allocation method a client/server pair runs.
type Mode = replica.Mode

// MeterSnapshot is a snapshot of one side's protocol traffic counters.
type MeterSnapshot = replica.MeterSnapshot

// SWMode returns the sliding-window protocol mode with window size k.
func SWMode(k int) Mode { return replica.SW(k) }

// Static1Mode returns the ST1 protocol mode (never allocate).
func Static1Mode() Mode { return replica.Static1() }

// Static2Mode returns the ST2 protocol mode (always keep a copy).
func Static2Mode() Mode { return replica.Static2() }

// Store is the stationary computer's versioned key-value database.
type Store = db.Store

// Item is one versioned value.
type Item = db.Item

// NewStore returns an in-memory store.
func NewStore() *Store { return db.NewStore() }

// OpenStore returns a store backed by an append-only log file, replaying
// existing records on open.
func OpenStore(path string) (*Store, error) { return db.Open(path) }

// Link carries protocol frames between the two computers.
type Link = transport.Link

// NewMemPair returns two connected in-memory links (synchronous,
// loss-free), suitable for tests and single-process experiments.
func NewMemPair() (Link, Link) { return transport.NewMemPair() }

// DialTCP connects a client link to a mobirep server address.
func DialTCP(addr string, onFrame func([]byte)) (Link, error) {
	return transport.Dial(addr, onFrame)
}

// NewServer creates the SC endpoint over a store.
func NewServer(store *Store, mode Mode) (*Server, error) {
	return replica.NewServer(store, mode)
}

// NewClient creates the MC endpoint over a link.
func NewClient(link Link, mode Mode) (*Client, error) {
	return replica.NewClient(link, mode)
}
