package mobirep

import "mobirep/internal/analytic"

// Closed-form results from the paper, re-exported for library users.
// theta is the probability the next relevant request is a write; omega is
// the control/data message cost ratio; k is the (odd) window size.

// PiK returns the steady-state probability that the MC holds a copy under
// SWk (equation 4).
func PiK(k int, theta float64) float64 { return analytic.PiK(k, theta) }

// Connection model (section 5).

// ExpST1Conn returns EXP_ST1 = 1 - theta (equation 2).
func ExpST1Conn(theta float64) float64 { return analytic.ExpST1Conn(theta) }

// ExpST2Conn returns EXP_ST2 = theta (equation 2).
func ExpST2Conn(theta float64) float64 { return analytic.ExpST2Conn(theta) }

// ExpSWConn returns EXP_SWk of Theorem 1 (equation 5).
func ExpSWConn(k int, theta float64) float64 { return analytic.ExpSWConn(k, theta) }

// AvgSWConn returns AVG_SWk = 1/4 + 1/(4(k+2)) of Theorem 3 (equation 6).
func AvgSWConn(k int) float64 { return analytic.AvgSWConn(k) }

// ExpT1Conn returns the section 7.1 expected cost of T1m.
func ExpT1Conn(m int, theta float64) float64 { return analytic.ExpT1Conn(m, theta) }

// ExpT2Conn returns the section 7.1 expected cost of T2m.
func ExpT2Conn(m int, theta float64) float64 { return analytic.ExpT2Conn(m, theta) }

// CompetitiveSWConn returns SWk's tight factor k+1 (Theorem 4).
func CompetitiveSWConn(k int) float64 { return analytic.CompetitiveSWConn(k) }

// Message model (section 6).

// ExpST1Msg returns EXP_ST1 = (1+omega)(1-theta) (equation 7).
func ExpST1Msg(theta, omega float64) float64 { return analytic.ExpST1Msg(theta, omega) }

// ExpST2Msg returns EXP_ST2 = theta (equation 7).
func ExpST2Msg(theta float64) float64 { return analytic.ExpST2Msg(theta) }

// ExpSW1Msg returns EXP_SW1 = theta(1-theta)(1+2omega) of Theorem 5.
func ExpSW1Msg(theta, omega float64) float64 { return analytic.ExpSW1Msg(theta, omega) }

// ExpSWMsg returns EXP_SWk of Theorem 8 (equation 11).
func ExpSWMsg(k int, theta, omega float64) float64 { return analytic.ExpSWMsg(k, theta, omega) }

// AvgSW1Msg returns AVG_SW1 = (1+2omega)/6 of Theorem 7 (equation 10).
func AvgSW1Msg(omega float64) float64 { return analytic.AvgSW1Msg(omega) }

// AvgSWMsg returns AVG_SWk of Theorem 10 (equation 12).
func AvgSWMsg(k int, omega float64) float64 { return analytic.AvgSWMsg(k, omega) }

// CompetitiveSW1Msg returns SW1's tight factor 1+2omega (Theorem 11).
func CompetitiveSW1Msg(omega float64) float64 { return analytic.CompetitiveSW1Msg(omega) }

// CompetitiveSWMsg returns SWk's tight factor (1+omega/2)(k+1)+omega
// (Theorem 12).
func CompetitiveSWMsg(k int, omega float64) float64 { return analytic.CompetitiveSWMsg(k, omega) }

// Algorithm identifies an allocation method in dominance queries.
type Algorithm = analytic.Algorithm

// Dominance constants.
const (
	AlgST1 = analytic.AlgST1
	AlgST2 = analytic.AlgST2
	AlgSW1 = analytic.AlgSW1
)

// BestExpectedMsg returns the algorithm with the lowest expected cost at
// (theta, omega) among ST1, ST2 and SW1 — the Figure 1 / Theorem 6 map.
func BestExpectedMsg(theta, omega float64) Algorithm {
	return analytic.BestExpectedMsg(theta, omega)
}

// BestExpectedConn returns the better static method at theta in the
// connection model.
func BestExpectedConn(theta float64) Algorithm { return analytic.BestExpectedConn(theta) }

// MinOddKBeatingSW1 returns the smallest odd window size whose average
// expected cost beats SW1 at the given omega, or 0 when none does
// (Corollaries 3 and 4; Figure 2).
func MinOddKBeatingSW1(omega float64) int { return analytic.MinOddKBeatingSW1(omega) }

// RecommendWindow suggests a window size balancing average expected cost
// against worst-case competitiveness: the smallest odd k whose average
// expected cost (connection model) is within slack of the optimum 1/4.
// The paper's discussion corresponds to slack = 0.10 -> k = 9 and
// slack = 0.06 -> k = 15. It panics unless 0 < slack <= 1.
func RecommendWindow(slack float64) int {
	if slack <= 0 || slack > 1 {
		panic("mobirep: slack must be in (0, 1]")
	}
	for k := 1; ; k += 2 {
		if analytic.AvgSWConn(k)/analytic.OptimumAvgConn-1 <= slack {
			return k
		}
	}
}
