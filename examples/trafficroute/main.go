// Traffic routing: a route-planning computer in a car reads traffic
// conditions for road segments from an online database over a packet
// network, where the user is charged per message (the paper's message
// model; RAM Mobile Data in 1994, cellular data today).
//
// Control messages (the read request, the delete-request) are cheap
// relative to a traffic-data payload, but not free — omega is the ratio.
// This example uses the paper's Figure 1 / Theorem 6 map to pick the best
// allocation method per segment from its known read/update pattern, then
// validates the choice by simulation. For segments whose pattern is
// unknown, it applies the Corollary 3/4 rule to pick the window size.
package main

import (
	"fmt"

	"mobirep"
)

type segment struct {
	name    string
	theta   float64 // fraction of relevant requests that are updates
	comment string
}

func main() {
	const omega = 0.3 // a control message costs 30% of a data message

	segments := []segment{
		{"highway-101", 0.85, "incident feed updates constantly, driver checks rarely"},
		{"downtown-grid", 0.45, "balanced: frequent congestion updates and route checks"},
		{"home-street", 0.05, "almost never updated, checked on every trip"},
	}

	fmt.Printf("message model, omega = %.2f\n", omega)
	fmt.Printf("Theorem 6 boundaries: ST2 below theta=%.3f, ST1 above theta=%.3f\n\n",
		2*omega/(1+2*omega), (1+omega)/(1+2*omega))

	fmt.Printf("%-14s %6s %8s %12s %12s %12s\n",
		"segment", "theta", "choice", "EXP(choice)", "EXP(ST1)", "EXP(ST2)")
	for _, s := range segments {
		best := mobirep.BestExpectedMsg(s.theta, omega)
		var chosen float64
		switch best {
		case mobirep.AlgST1:
			chosen = mobirep.ExpST1Msg(s.theta, omega)
		case mobirep.AlgST2:
			chosen = mobirep.ExpST2Msg(s.theta)
		default:
			chosen = mobirep.ExpSW1Msg(s.theta, omega)
		}
		fmt.Printf("%-14s %6.2f %8v %12.4f %12.4f %12.4f\n",
			s.name, s.theta, best, chosen,
			mobirep.ExpST1Msg(s.theta, omega), mobirep.ExpST2Msg(s.theta))
	}

	// Validate the downtown choice by simulation.
	fmt.Println("\nsimulating downtown-grid with each method:")
	model := mobirep.MessageModel(omega)
	for _, mk := range []func() mobirep.Policy{
		mobirep.NewST1, mobirep.NewST2, func() mobirep.Policy { return mobirep.NewSW(1) },
	} {
		mk := mk
		sum := mobirep.EstimateExpected(mk, model,
			mobirep.ExpectedOpts{Theta: 0.45, Ops: 100_000, Trials: 6, Seed: 11})
		fmt.Printf("  %-4s measured %.4f msg-units/request\n", mk().Name(), sum.Mean())
	}

	// Unknown patterns: theta varies with time of day, so optimize the
	// average expected cost. Corollary 3/4: at this omega (<= 0.4), SW1
	// has the least AVG of all window sizes.
	fmt.Println("\nunknown/drifting pattern (AVG measure):")
	if k := mobirep.MinOddKBeatingSW1(omega); k == 0 {
		fmt.Printf("  omega=%.2f <= 0.4: no window size beats SW1 (Corollary 3) -> use SW1\n", omega)
	} else {
		fmt.Printf("  omega=%.2f: windows k >= %d beat SW1 (Corollary 4)\n", omega, k)
	}
	avg := mobirep.EstimateAverage(func() mobirep.Policy { return mobirep.NewSW(1) }, model,
		mobirep.AverageOpts{Periods: 300, OpsPerPeriod: 400, Trials: 6, Seed: 13})
	fmt.Printf("  SW1 measured AVG %.4f vs theory %.4f (Theorem 7)\n",
		avg.Mean(), mobirep.AvgSW1Msg(omega))

	// And the worst-case guarantee that the statics lack.
	fmt.Printf("  SW1 worst case: %.2f-competitive (Theorem 11); statics: unbounded\n",
		mobirep.CompetitiveSW1Msg(omega))
}
