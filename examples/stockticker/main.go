// Stock ticker: the paper's introduction scenario. An investor's mobile
// terminal tracks an instrument price held in an online database. The
// read/write mix swings through the trading day — quiet overnight (few
// updates, occasional reads), volatile open (updates flood in), midday
// monitoring (reads dominate) — so no static allocation is right all day.
//
// The example replays a full synthetic trading day through ST1, ST2 and
// several sliding windows and prints what each would have cost in both
// tariff models, plus the offline hindsight optimum.
package main

import (
	"fmt"

	"mobirep"
)

// phase is one segment of the trading day with its own read/write rates
// (requests per minute at the MC and SC respectively).
type phase struct {
	name    string
	minutes int
	lambdaR float64 // investor price checks per minute
	lambdaW float64 // price updates per minute
}

func main() {
	day := []phase{
		{"overnight", 420, 0.2, 0.1},       // sparse checks, sparse updates
		{"pre-open", 60, 2.0, 1.0},         // warming up
		{"open (volatile)", 90, 3.0, 12.0}, // updates swamp reads
		{"midday watch", 240, 8.0, 1.5},    // investor monitors position
		{"close (volatile)", 60, 4.0, 10.0},
		{"after hours", 180, 1.0, 0.3},
	}

	// Build the day's request schedule from per-phase Poisson processes.
	rng := mobirep.NewRNG(7)
	var schedule mobirep.Schedule
	fmt.Println("trading day phases:")
	for _, p := range day {
		n := int(float64(p.minutes) * (p.lambdaR + p.lambdaW))
		ops := mobirep.PoissonSchedule(rng, p.lambdaR, p.lambdaW, n)
		theta := p.lambdaW / (p.lambdaR + p.lambdaW)
		fmt.Printf("  %-16s %4d min  theta=%.2f  best-fixed=%v  (%d requests)\n",
			p.name, p.minutes, theta, mobirep.BestExpectedConn(theta), n)
		for _, op := range ops {
			schedule = append(schedule, op.Op)
		}
	}
	fmt.Printf("total relevant requests: %d (overall write fraction %.2f)\n\n",
		len(schedule), schedule.WriteFraction())

	// Replay every policy over the identical day.
	policies := []mobirep.Policy{
		mobirep.NewST1(), mobirep.NewST2(),
		mobirep.NewSW(1), mobirep.NewSW(3), mobirep.NewSW(9), mobirep.NewSW(15),
		mobirep.NewT1(9), mobirep.NewT2(9),
	}
	conn := mobirep.ConnectionModel()
	msg := mobirep.MessageModel(0.25) // control messages are short: omega = 0.25
	opt := mobirep.OptimalCost(schedule)

	fmt.Printf("%-8s %16s %20s %14s\n", "policy", "connections", "messages (w=0.25)", "vs hindsight")
	fmt.Printf("%-8s %16.0f %20.1f %14s\n", "OPT", opt, opt, "1.00x")
	for _, p := range policies {
		p.Reset()
		c := mobirep.Replay(p, conn, schedule, 0).Cost
		p.Reset()
		m := mobirep.Replay(p, msg, schedule, 0).Cost
		fmt.Printf("%-8s %16.0f %20.1f %13.2fx\n", p.Name(), c, m, c/opt)
	}

	fmt.Println("\nreading the table: the statics each win one regime and lose the other;")
	fmt.Println("the sliding windows adapt at every phase change and land near the")
	fmt.Println("hindsight optimum, with larger k smoothing out volatile phases.")

	// Hindsight tuning: which window size should have served this exact day?
	k, c := mobirep.BestWindow([]int{1, 3, 5, 9, 15, 31, 63}, conn, schedule)
	fmt.Printf("\nhindsight tuning oracle: SW%d would have been the best window (%.0f connections)\n", k, c)
	cmp := mobirep.Compare([]mobirep.Factory{
		func() mobirep.Policy { return mobirep.NewSW(k) },
		func() mobirep.Policy { return mobirep.NewAdaptiveSW(3, 63) },
	}, conn, schedule)
	for _, r := range cmp.Ranked {
		if r.Name == "ASW(3-63)" {
			fmt.Printf("the adaptive window, with no tuning, comes in at %.2fx the offline optimum\n",
				r.VsOptimal)
		}
	}
}
