// Multi-object allocation (section 7.2): a salesperson's mobile terminal
// works with several inventory objects, and some operations touch more
// than one at a time (a joint read of an order plus its stock level).
// Joint operations couple the per-object decisions, so the optimum is a
// set-level choice, not a per-object one.
package main

import (
	"fmt"

	"mobirep"
)

func main() {
	// Five objects: 0=catalog, 1=stock, 2=orders, 3=prices, 4=customers.
	names := []string{"catalog", "stock", "orders", "prices", "customers"}
	catalog, stock := mobirep.NewObjectSet(0), mobirep.NewObjectSet(1)
	orders, prices := mobirep.NewObjectSet(2), mobirep.NewObjectSet(3)
	customers := mobirep.NewObjectSet(4)

	// Relative operation frequencies (per hour, say). Note the joint
	// classes: quoting reads catalog+prices together; order entry reads
	// stock and writes orders atomically.
	freqs := mobirep.FreqTable{
		{Kind: mobirep.MultiRead, Objects: catalog}:          40,
		{Kind: mobirep.MultiRead, Objects: catalog | prices}: 25, // quoting
		{Kind: mobirep.MultiRead, Objects: stock}:            15,
		{Kind: mobirep.MultiRead, Objects: customers}:        10,
		{Kind: mobirep.MultiWrite, Objects: prices}:          30, // HQ reprices often
		{Kind: mobirep.MultiWrite, Objects: stock}:           35, // warehouse movements
		{Kind: mobirep.MultiWrite, Objects: orders}:          5,
		{Kind: mobirep.MultiRead, Objects: orders | stock}:   8, // order entry check
		{Kind: mobirep.MultiWrite, Objects: customers}:       1,
	}

	model := mobirep.MultiConnModel()
	n := 5

	// Exact optimum by enumeration.
	alloc, cost := mobirep.OptimalStaticAllocation(freqs, n, model)
	fmt.Println("optimal static allocation (connection model):")
	fmt.Printf("  cache at the mobile terminal: %s\n", describe(alloc, names))
	fmt.Printf("  expected cost: %.4f connections per operation\n\n", cost)

	// What the naive per-object rule would do (reads > writes per object),
	// and what it costs — joint operations make it suboptimal.
	naive := naiveAllocation(freqs, n)
	fmt.Printf("naive per-object rule would cache: %s\n", describe(naive, names))
	fmt.Printf("  expected cost: %.4f (%.1f%% above optimal)\n\n",
		mobirep.MultiExpectedCost(freqs, naive, model),
		100*(mobirep.MultiExpectedCost(freqs, naive, model)/cost-1))

	// Greedy matches the optimum here and scales past enumeration.
	galloc, gcost := mobirep.GreedyAllocation(freqs, n, model)
	fmt.Printf("greedy local search: %s at %.4f\n\n", describe(galloc, names), gcost)

	// Dynamic: frequencies are rarely known in advance. The window-based
	// method estimates them online and re-solves periodically.
	fmt.Println("dynamic window method under a mid-day regime change:")
	dyn := mobirep.NewDynamicMulti(n, 300, 60, model)
	rng := mobirep.NewRNG(3)

	run := func(label string, f mobirep.FreqTable, ops int) {
		start, startCost := dyn.Ops(), dyn.Cost()
		sampleInto(rng, f, ops, dyn)
		per := (dyn.Cost() - startCost) / float64(dyn.Ops()-start)
		_, opt := mobirep.OptimalStaticAllocation(f, n, model)
		fmt.Printf("  %-22s per-op %.4f (static oracle %.4f), caching %s\n",
			label, per, opt, describe(dyn.Alloc(), names))
	}
	run("morning (as above)", freqs, 40000)

	// Afternoon: prices freeze (no more writes), stock reads spike.
	afternoon := mobirep.FreqTable{
		{Kind: mobirep.MultiRead, Objects: catalog}:          20,
		{Kind: mobirep.MultiRead, Objects: catalog | prices}: 35,
		{Kind: mobirep.MultiRead, Objects: stock}:            45,
		{Kind: mobirep.MultiWrite, Objects: stock}:           5,
		{Kind: mobirep.MultiWrite, Objects: orders}:          25,
	}
	run("afternoon (repriced)", afternoon, 40000)
}

// describe renders an allocation with object names.
func describe(a mobirep.ObjectSet, names []string) string {
	out := ""
	for i, n := range names {
		if a.Has(i) {
			if out != "" {
				out += ", "
			}
			out += n
		}
	}
	if out == "" {
		return "(nothing)"
	}
	return out
}

// naiveAllocation caches each object whose read frequency exceeds its
// write frequency, ignoring joint structure.
func naiveAllocation(f mobirep.FreqTable, n int) mobirep.ObjectSet {
	var alloc mobirep.ObjectSet
	for id := 0; id < n; id++ {
		reads, writes := 0.0, 0.0
		for c, v := range f {
			if !c.Objects.Has(id) {
				continue
			}
			if c.Kind == mobirep.MultiRead {
				reads += v
			} else {
				writes += v
			}
		}
		if reads > writes {
			alloc |= mobirep.NewObjectSet(id)
		}
	}
	return alloc
}

// sampleInto draws ops operations from the frequency table and applies
// them to the dynamic allocator.
func sampleInto(rng *mobirep.RNG, f mobirep.FreqTable, ops int, dyn *mobirep.DynamicMulti) {
	classes := make([]mobirep.OpClass, 0, len(f))
	weights := make([]float64, 0, len(f))
	total := 0.0
	for c, w := range f {
		classes = append(classes, c)
		weights = append(weights, w)
		total += w
	}
	for i := 0; i < ops; i++ {
		x := rng.Float64() * total
		pick := classes[len(classes)-1]
		for j, w := range weights {
			if x < w {
				pick = classes[j]
				break
			}
			x -= w
		}
		dyn.Apply(mobirep.MultiOp{Kind: pick.Kind, Objects: pick.Objects})
	}
}
