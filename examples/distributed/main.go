// Distributed protocol demo: the full section 4 stack in one process. A
// stationary computer (server + versioned store) and a mobile computer
// (client + cache) run the SW9 protocol over an in-memory link; the demo
// drives a Poisson workload through them and compares the actual metered
// traffic with the simulator and the closed-form prediction — the E13
// experiment in miniature.
package main

import (
	"fmt"

	"mobirep"
)

func main() {
	const (
		k     = 9
		theta = 0.35
		omega = 0.5
		ops   = 50_000
	)

	// Wire the two computers together.
	scLink, mcLink := mobirep.NewMemPair()
	server, err := mobirep.NewServer(mobirep.NewStore(), mobirep.SWMode(k))
	check(err)
	serverMeter := server.Attach(scLink).Meter()
	client, err := mobirep.NewClient(mcLink, mobirep.SWMode(k))
	check(err)

	// Seed the database (free: no copy at the MC yet).
	_, err = server.Write("weather:ORD", []byte(`{"temp":71,"wind":"12kt"}`))
	check(err)

	// Drive the paper's workload: reads at the MC, writes at the SC,
	// merged from two Poisson processes.
	rng := mobirep.NewRNG(99)
	timed := mobirep.PoissonSchedule(rng, 1-theta, theta, ops)
	var schedule mobirep.Schedule
	version := 1
	for _, t := range timed {
		schedule = append(schedule, t.Op)
		if t.Op == mobirep.Read {
			_, err := client.Read("weather:ORD")
			check(err)
		} else {
			version++
			_, err := server.Write("weather:ORD", fmt.Appendf(nil, `{"v":%d}`, version))
			check(err)
		}
	}

	// What actually crossed the (virtual) wireless link.
	total := serverMeter.Snapshot().Add(client.Meter().Snapshot())
	fmt.Printf("protocol run: %d requests through SW%d (theta=%.2f)\n\n", ops, k, theta)
	fmt.Printf("measured traffic:  %d data msgs, %d control msgs, %d bytes\n",
		total.DataMsgs, total.ControlMsgs, total.Bytes)
	fmt.Printf("connection cost:   %.0f connections (%.4f per request)\n",
		total.ConnectionCost(), total.ConnectionCost()/float64(ops))
	fmt.Printf("message cost:      %.1f units at omega=%.2f (%.4f per request)\n\n",
		total.MessageCost(omega), omega, total.MessageCost(omega)/float64(ops))

	// The simulator on the identical schedule must agree exactly.
	simRes := mobirep.Replay(mobirep.NewSW(k), mobirep.MessageModel(omega), schedule, 0)
	fmt.Printf("simulator on the same schedule: %.1f units — %s\n",
		simRes.Cost, agree(simRes.Cost, total.MessageCost(omega)))

	// And the paper's formula predicts both up to sampling noise.
	fmt.Printf("equation 11 prediction:         %.1f units\n\n",
		mobirep.ExpSWMsg(k, theta, omega)*float64(ops))

	// Cache behaviour on the mobile computer.
	cs := client.Cache().Stats()
	fmt.Printf("mobile cache: %d hits, %d misses (%.1f%% hit rate), %d installs, %d drops\n",
		cs.Hits, cs.Misses, 100*cs.HitRate(), cs.Installs, cs.Drops)
	fmt.Printf("steady-state copy probability: pi_%d(%.2f) = %.3f\n",
		k, theta, mobirep.PiK(k, theta))
}

func agree(a, b float64) string {
	if a-b < 1e-6 && b-a < 1e-6 {
		return "exact match"
	}
	return fmt.Sprintf("MISMATCH (protocol %.1f)", b)
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
