// Disconnected operation: the defining event of mobile computing (the
// paper cites Coda for exactly this). A field technician's handheld syncs
// a 30-item work-order list, goes dark through a warehouse shift, and
// reconnects. The demo shows what the protocol guarantees across the gap
// — no stale reads, no wasted propagation — and what revalidation saves
// on the reconnect refresh.
package main

import (
	"bytes"
	"fmt"

	"mobirep"
)

func main() {
	const items, payload = 30, 2048

	server, err := mobirep.NewServer(mobirep.NewStore(), mobirep.SWMode(3))
	check(err)
	scLink, mcLink := mobirep.NewMemPair()
	session := server.Attach(scLink)
	client, err := mobirep.NewClient(mcLink, mobirep.SWMode(3))
	check(err)

	keys := make([]string, items)
	for i := range keys {
		keys[i] = fmt.Sprintf("workorder/%02d", i)
		_, err := server.Write(keys[i], bytes.Repeat([]byte{'a'}, payload))
		check(err)
	}

	// Morning sync: two joint reads give every item's window a read
	// majority, so the whole list is cached (one connection each).
	_, err = client.ReadMany(keys)
	check(err)
	_, err = client.ReadMany(keys)
	check(err)
	cached := 0
	for _, k := range keys {
		if client.HasCopy(k) {
			cached++
		}
	}
	synced := session.Meter().Snapshot().Add(client.Meter().Snapshot())
	fmt.Printf("morning sync: %d/%d items cached, %d B over %d data + %d control msgs\n",
		cached, items, synced.Bytes, synced.DataMsgs, synced.ControlMsgs)

	// The handheld goes dark. Both sides tear down: the client drops its
	// copies (they can no longer be kept coherent), the server stops
	// propagating to a radio that is not there.
	client.Disconnect()
	session.Detach()
	fmt.Printf("\ndisconnected: offline=%v, cached copies dropped, server sessions=%d\n",
		client.Offline(), server.Sessions())
	if _, err := client.Read(keys[0]); err != nil {
		fmt.Printf("read while offline: %v (never a stale answer)\n", err)
	}

	// Dispatch updates five work orders during the shift. No propagation
	// is attempted — the detached session is gone.
	before := session.Meter().Snapshot()
	for i := 0; i < 5; i++ {
		_, err := server.Write(keys[i], bytes.Repeat([]byte{'b'}, payload))
		check(err)
	}
	if session.Meter().Snapshot() == before {
		fmt.Println("5 work orders updated while away: zero bytes toward the dark radio")
	}

	// Back in coverage: new link, fresh session, warm archive.
	scLink2, mcLink2 := mobirep.NewMemPair()
	session2 := server.Attach(scLink2)
	client.Reattach(mcLink2)
	pre := session2.Meter().Snapshot().Add(client.Meter().Snapshot())
	refreshed, err := client.ReadMany(keys)
	check(err)
	post := session2.Meter().Snapshot().Add(client.Meter().Snapshot())

	changedSeen := 0
	for _, it := range refreshed {
		if len(it.Value) > 0 && it.Value[0] == 'b' {
			changedSeen++
		}
	}
	refreshBytes := post.Bytes - pre.Bytes
	naive := items * payload
	fmt.Printf("\nreconnect refresh: %d items current again (%d changed while away)\n",
		len(refreshed), changedSeen)
	fmt.Printf("  transferred %d B in one round trip — a naive re-fetch would move >%d B (%.0f%% saved)\n",
		refreshBytes, naive, 100*(1-float64(refreshBytes)/float64(naive)))
	fmt.Printf("  revalidations confirmed by version: %d\n", client.Cache().Stats().Revalidations)

	// And the allocation protocol simply resumes: read majorities rebuild
	// the cache, writes propagate again.
	client.ReadMany(keys)
	recached := 0
	for _, k := range keys {
		if client.HasCopy(k) {
			recached++
		}
	}
	fmt.Printf("\nprotocol resumed: %d/%d items re-cached by read majority\n", recached, items)
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
