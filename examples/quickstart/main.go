// Quickstart: pick an allocation policy, simulate it against the paper's
// workload model, and compare the measured communication cost with the
// closed-form prediction.
package main

import (
	"fmt"

	"mobirep"
)

func main() {
	// A mobile user reads a data item; the stationary database writes it.
	// theta is the probability that the next relevant request is a write.
	const theta = 0.3

	// The paper's recommendation: choose the window size to balance
	// average cost against worst-case competitiveness. slack 10% -> k=9.
	k := mobirep.RecommendWindow(0.10)
	fmt.Printf("recommended window size: k = %d (SW%d is %d-competitive)\n\n",
		k, k, int(mobirep.CompetitiveSWConn(k)))

	// Measure the expected cost per request in the connection model and
	// compare with Theorem 1.
	model := mobirep.ConnectionModel()
	sum := mobirep.EstimateExpected(
		func() mobirep.Policy { return mobirep.NewSW(k) },
		model,
		mobirep.ExpectedOpts{Theta: theta, Ops: 200_000, Trials: 8, Seed: 42},
	)
	fmt.Printf("SW%d at theta=%.2f, connection model:\n", k, theta)
	fmt.Printf("  measured EXP: %.4f ± %.4f connections/request\n", sum.Mean(), sum.CI95())
	fmt.Printf("  theory   EXP: %.4f (Theorem 1)\n\n", mobirep.ExpSWConn(k, theta))

	// The statics for comparison: at this theta, ST2 is the best fixed
	// choice — but only if theta never changes.
	fmt.Printf("  ST1 theory:   %.4f   ST2 theory: %.4f   best static: %v\n\n",
		mobirep.ExpST1Conn(theta), mobirep.ExpST2Conn(theta), mobirep.BestExpectedConn(theta))

	// When theta drifts, the sliding window wins on average expected cost:
	// AVG_SWk = 1/4 + 1/(4(k+2)) vs 1/2 for either static.
	avg := mobirep.EstimateAverage(
		func() mobirep.Policy { return mobirep.NewSW(k) },
		model,
		mobirep.AverageOpts{Periods: 400, OpsPerPeriod: 500, Trials: 8, Seed: 43},
	)
	fmt.Printf("drifting theta (the AVG measure):\n")
	fmt.Printf("  measured AVG: %.4f ± %.4f\n", avg.Mean(), avg.CI95())
	fmt.Printf("  theory   AVG: %.4f (Theorem 3); statics sit at 0.5000\n\n", mobirep.AvgSWConn(k))

	// Worst case: replay the adversarial family that forces the tight
	// (k+1)-competitive ratio.
	res := mobirep.MeasureRatio(mobirep.NewSW(k), model, mobirep.SWkAdversary(k, 1000))
	fmt.Printf("adversarial schedule: measured ratio %.2f vs bound %d (Theorem 4)\n",
		res.Ratio, k+1)
}
