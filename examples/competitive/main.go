// Competitive analysis without proofs: the library solves the policy-vs-
// adversary game exactly, so "how bad can this policy get?" is a function
// call, not a theorem. This example reproduces the paper's worst-case
// table mechanically and then answers questions the paper left open.
package main

import (
	"fmt"
	"math"

	"mobirep"
)

func main() {
	conn := mobirep.ConnectionModel()
	msg := mobirep.MessageModel(0.5)

	fmt.Println("exact competitive ratios (game solver), connection model:")
	fmt.Printf("  %-10s %-12s %s\n", "policy", "ratio", "paper")
	for _, k := range []int{1, 3, 5, 7, 9} {
		ratio := must(mobirep.ExactCompetitiveRatio(
			asEnum(mobirep.NewSW(k)), conn, 32, 1e-7))
		fmt.Printf("  %-10s %-12.3f k+1 = %d (Theorem 4)\n",
			fmt.Sprintf("SW%d", k), ratio, k+1)
	}
	for _, m := range []int{3, 7} {
		ratio := must(mobirep.ExactCompetitiveRatio(
			asEnum(mobirep.NewT1(m)), conn, 32, 1e-7))
		fmt.Printf("  %-10s %-12.3f m+1 = %d (section 7.1)\n",
			fmt.Sprintf("T1(%d)", m), ratio, m+1)
	}
	st1 := must(mobirep.ExactCompetitiveRatio(asEnum(mobirep.NewST1()), conn, 64, 1e-6))
	fmt.Printf("  %-10s %-12v not competitive (section 5.3)\n", "ST1", st1)

	fmt.Println("\nmessage model, omega = 0.5:")
	for _, k := range []int{1, 3, 5} {
		ratio := must(mobirep.ExactCompetitiveRatio(asEnum(mobirep.NewSW(k)), msg, 32, 1e-7))
		var paper float64
		if k == 1 {
			paper = mobirep.CompetitiveSW1Msg(0.5)
		} else {
			paper = mobirep.CompetitiveSWMsg(k, 0.5)
		}
		fmt.Printf("  SW%-8d %-12.3f paper: %.3f (Theorems 11/12)\n", k, ratio, paper)
	}

	fmt.Println("\nquestions the paper left open, answered exactly:")
	t1msg := must(mobirep.ExactCompetitiveRatio(asEnum(mobirep.NewT1(4)), msg, 32, 1e-7))
	fmt.Printf("  T1(4) in the message model: %.4f-competitive\n", t1msg)
	for _, k := range []int{2, 4, 6} {
		even := must(mobirep.ExactCompetitiveRatio(asEnum(mobirep.NewEvenSW(k)), conn, 32, 1e-7))
		fmt.Printf("  tie-holding even window SWe%d: %.4f (same as SW%d — but cheaper in expectation)\n",
			k, even, k+1)
	}

	// The solver can also extract the adversary itself: a witness cycle
	// whose repetition forces the policy to its ratio.
	fmt.Println("\nadversarial families discovered by the solver:")
	for _, k := range []int{1, 3, 5} {
		cycle, _, err := mobirep.WorstSchedule(asEnum(mobirep.NewSW(k)), conn, float64(k+1)-0.05)
		if err != nil {
			panic(err)
		}
		res := mobirep.MeasureRatio(mobirep.NewSW(k), conn, cycle.Repeat(4000/len(cycle)))
		fmt.Printf("  SW%d: repeat %q -> ratio %.3f (bound %d)\n", k, cycle.String(), res.Ratio, k+1)
	}

	// Verification mode: confirm a bound without searching for the ratio.
	ok, err := mobirep.VerifyCompetitive(asEnum(mobirep.NewSW(9)), conn, 10)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nVerifyCompetitive(SW9, c=10) = %v — Theorem 4 checked in one call\n", ok)
	ok, _ = mobirep.VerifyCompetitive(asEnum(mobirep.NewSW(9)), conn, 9.99)
	fmt.Printf("VerifyCompetitive(SW9, c=9.99) = %v — and it is tight\n", ok)
}

func asEnum(p mobirep.Policy) mobirep.EnumerablePolicy {
	e, ok := p.(mobirep.EnumerablePolicy)
	if !ok {
		panic("policy is not finite-state")
	}
	return e
}

func must(v float64, err error) float64 {
	if err != nil {
		panic(err)
	}
	if math.IsInf(v, 1) {
		return math.Inf(1)
	}
	return v
}
