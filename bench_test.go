package mobirep

// Benchmark harness: one benchmark per experiment (E01-E13 reproduce the
// paper's artifacts, E14-E22 the extensions; all run in quick mode under
// -bench), micro-benchmarks of the hot paths, and the ablation studies
// DESIGN.md calls out. Regenerate the full-size tables with
// cmd/mobirep-bench.

import (
	"fmt"
	"testing"

	"mobirep/internal/analytic"
	"mobirep/internal/core"
	"mobirep/internal/cost"
	"mobirep/internal/db"
	"mobirep/internal/experiments"
	"mobirep/internal/offline"
	"mobirep/internal/replica"
	"mobirep/internal/sched"
	"mobirep/internal/sim"
	"mobirep/internal/stats"
	"mobirep/internal/transport"
	"mobirep/internal/wire"
	"mobirep/internal/workload"
)

// benchExperiment runs one registered experiment in quick mode.
func benchExperiment(b *testing.B, id string) {
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	cfg := experiments.Config{Seed: 1994, Quick: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables := e.Run(cfg)
		if len(tables) == 0 {
			b.Fatalf("%s produced no tables", id)
		}
	}
}

func BenchmarkE01Fig1Dominance(b *testing.B)   { benchExperiment(b, "E01") }
func BenchmarkE02Fig2Threshold(b *testing.B)   { benchExperiment(b, "E02") }
func BenchmarkE03ConnExpected(b *testing.B)    { benchExperiment(b, "E03") }
func BenchmarkE04ConnAverage(b *testing.B)     { benchExperiment(b, "E04") }
func BenchmarkE05ConnCompetitive(b *testing.B) { benchExperiment(b, "E05") }
func BenchmarkE06MsgExpected(b *testing.B)     { benchExperiment(b, "E06") }
func BenchmarkE07MsgAverage(b *testing.B)      { benchExperiment(b, "E07") }
func BenchmarkE08MsgCompetitive(b *testing.B)  { benchExperiment(b, "E08") }
func BenchmarkE09TStar(b *testing.B)           { benchExperiment(b, "E09") }
func BenchmarkE10Conclusions(b *testing.B)     { benchExperiment(b, "E10") }
func BenchmarkE11MultiObject(b *testing.B)     { benchExperiment(b, "E11") }
func BenchmarkE12PeriodModel(b *testing.B)     { benchExperiment(b, "E12") }
func BenchmarkE13Protocol(b *testing.B)        { benchExperiment(b, "E13") }
func BenchmarkE14Baselines(b *testing.B)       { benchExperiment(b, "E14") }
func BenchmarkE15Fleet(b *testing.B)           { benchExperiment(b, "E15") }
func BenchmarkE16ColdStartParity(b *testing.B) { benchExperiment(b, "E16") }
func BenchmarkE17AdaptiveWindow(b *testing.B)  { benchExperiment(b, "E17") }
func BenchmarkE18JointReads(b *testing.B)      { benchExperiment(b, "E18") }
func BenchmarkE19BurstyWorkloads(b *testing.B) { benchExperiment(b, "E19") }
func BenchmarkE20GameSolver(b *testing.B)      { benchExperiment(b, "E20") }
func BenchmarkE21Lookahead(b *testing.B)       { benchExperiment(b, "E21") }
func BenchmarkE22Revalidation(b *testing.B)    { benchExperiment(b, "E22") }

// E23 and E24 are themselves timing harnesses (transport throughput and
// fleet-scale load); wrapping them in a benchmark loop would only
// re-measure the measurement, so like E23 before it, E24 gets no
// BenchmarkE## entry. Run them via `mobirep-bench E23 E24`.

// --- Micro-benchmarks of the hot paths -----------------------------------

func BenchmarkPolicyApplySW9(b *testing.B) {
	p := core.NewSW(9)
	rng := stats.NewRNG(1)
	s := workload.Bernoulli(rng, 0.5, 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Apply(s[i&(1<<16-1)])
	}
}

func BenchmarkPolicyApplySW95(b *testing.B) {
	p := core.NewSW(95)
	rng := stats.NewRNG(1)
	s := workload.Bernoulli(rng, 0.5, 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Apply(s[i&(1<<16-1)])
	}
}

func BenchmarkPolicyApplyT1(b *testing.B) {
	p := core.NewT1(15)
	rng := stats.NewRNG(1)
	s := workload.Bernoulli(rng, 0.5, 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Apply(s[i&(1<<16-1)])
	}
}

func BenchmarkReplayThroughput(b *testing.B) {
	rng := stats.NewRNG(1)
	s := workload.Bernoulli(rng, 0.4, 100000)
	m := cost.NewMessage(0.5)
	b.SetBytes(int64(len(s)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := core.NewSW(9)
		sim.Replay(p, m, s, 0)
	}
}

// BenchmarkReplayFusedSW9 is the fused-kernel counterpart of
// BenchmarkReplayThroughput: same policy, model, and workload, but replayed
// through the monomorphic SW kernel with the ops drawn inline from the RNG
// instead of a materialized schedule.
func BenchmarkReplayFusedSW9(b *testing.B) {
	m := cost.NewMessage(0.5)
	kn, ok := sim.NewKernel(core.NewSW(9), m)
	if !ok {
		b.Fatal("SW9 kernel unavailable")
	}
	rng := stats.NewRNG(1)
	const n = 100000
	b.SetBytes(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kn.Reset()
		kn.ReplayBernoulli(rng, 0.4, n, 0)
	}
}

// BenchmarkReplayStream measures the streaming replay path used for
// policies without a fused kernel: ops come straight from the RNG, the
// schedule is never materialized.
func BenchmarkReplayStream(b *testing.B) {
	m := cost.NewMessage(0.5)
	const n = 100000
	b.SetBytes(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := stats.NewRNG(1)
		src := sim.NewBernoulliStream(rng, 0.4)
		sim.ReplayStream(core.NewT1(5), m, src, n, 0)
	}
}

// BenchmarkParallelTrials measures a full estimator call — trial fan-out on
// the shared worker pool included — at the sequential baseline and at eight
// workers. The ns/op gap between the sub-benchmarks is the engine speedup.
func BenchmarkParallelTrials(b *testing.B) {
	m := cost.NewConnection()
	opts := sim.ExpectedOpts{Theta: 0.4, Ops: 20000, Trials: 8, Seed: 7}
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			prev := sim.SetMaxWorkers(workers)
			defer sim.SetMaxWorkers(prev)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sim.EstimateExpected(func() core.Policy { return core.NewSW(9) }, m, opts)
			}
		})
	}
}

// TestFusedKernelZeroAllocs is the ISSUE's allocation budget: once the
// kernel and RNG exist, replaying a trial must not allocate at all.
func TestFusedKernelZeroAllocs(t *testing.T) {
	rng := stats.NewRNG(1)
	for _, tc := range []struct {
		name string
		kn   *sim.Kernel
	}{
		{"SW9/msg", mustKernel(t, core.NewSW(9), cost.NewMessage(0.5))},
		{"SW1/conn", mustKernel(t, core.NewSW(1), cost.NewConnection())},
		{"ST1/conn", mustKernel(t, core.NewST1(), cost.NewConnection())},
		{"ST2/msg", mustKernel(t, core.NewST2(), cost.NewMessage(0.3))},
	} {
		allocs := testing.AllocsPerRun(10, func() {
			tc.kn.Reset()
			tc.kn.ReplayBernoulli(rng, 0.4, 5000, 100)
		})
		if allocs != 0 {
			t.Errorf("%s: ReplayBernoulli allocated %.0f times per run, want 0", tc.name, allocs)
		}
		allocs = testing.AllocsPerRun(10, func() {
			tc.kn.Reset()
			tc.kn.ReplayDrifting(rng, 20, 250)
		})
		if allocs != 0 {
			t.Errorf("%s: ReplayDrifting allocated %.0f times per run, want 0", tc.name, allocs)
		}
	}
}

func mustKernel(t *testing.T, p core.Policy, m cost.Model) *sim.Kernel {
	t.Helper()
	kn, ok := sim.NewKernel(p, m)
	if !ok {
		t.Fatalf("no fused kernel for %s", p.Name())
	}
	return kn
}

func BenchmarkPiK(b *testing.B) {
	for i := 0; i < b.N; i++ {
		analytic.PiK(95, 0.37)
	}
}

func BenchmarkExpSWMsg(b *testing.B) {
	for i := 0; i < b.N; i++ {
		analytic.ExpSWMsg(21, 0.37, 0.5)
	}
}

func BenchmarkOfflineDP(b *testing.B) {
	rng := stats.NewRNG(1)
	s := workload.Bernoulli(rng, 0.5, 100000)
	c := offline.Ideal()
	b.SetBytes(int64(len(s)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		offline.Cost(s, c)
	}
}

func BenchmarkWireEncodeDecode(b *testing.B) {
	msg := wire.Message{
		Kind: wire.KindReadResp, Key: "weather:ORD",
		Value: make([]byte, 256), Version: 42, Allocate: true,
		Window: sched.MustParse("rrwrwrwrw"),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frame, err := wire.Encode(msg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := wire.Decode(frame); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProtocolReadLocal(b *testing.B) {
	cli, srv := benchPair(b, replica.SW(3))
	srv.Write("x", []byte("v"))
	cli.Read("x")
	cli.Read("x") // allocate
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cli.Read("x"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProtocolWriteProp(b *testing.B) {
	cli, srv := benchPair(b, replica.Static2())
	srv.Write("x", []byte("v"))
	cli.Read("x") // allocate permanently
	payload := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srv.Write("x", payload); err != nil {
			b.Fatal(err)
		}
	}
}

func benchPair(b *testing.B, mode replica.Mode) (*replica.Client, *replica.Server) {
	b.Helper()
	a, bb := transport.NewMemPair()
	srv, err := replica.NewServer(db.NewStore(), mode)
	if err != nil {
		b.Fatal(err)
	}
	srv.Attach(a)
	cli, err := replica.NewClient(bb, mode)
	if err != nil {
		b.Fatal(err)
	}
	return cli, srv
}

func BenchmarkRNGUint64(b *testing.B) {
	r := stats.NewRNG(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}

func BenchmarkDBPut(b *testing.B) {
	s := db.NewStore()
	v := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Put("x", v); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations ------------------------------------------------------------
//
// These report design-choice metrics via b.ReportMetric rather than just
// time: run with -bench Ablation -benchtime 1x to read them.

// BenchmarkAblationWindowSize quantifies the AVG-vs-competitiveness
// trade-off that the window size controls.
func BenchmarkAblationWindowSize(b *testing.B) {
	for _, k := range []int{1, 3, 9, 15, 39} {
		k := k
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = analytic.AvgSWConn(k)
			}
			b.ReportMetric(analytic.AvgSWConn(k), "avg-cost")
			b.ReportMetric(analytic.CompetitiveSWConn(k), "competitive-factor")
		})
	}
}

// BenchmarkAblationSW1Suppression measures what the SW1 delete-request
// optimization saves: SW1 versus a window-1 policy that propagates data
// on the deallocating write (costing 1+omega instead of omega).
func BenchmarkAblationSW1Suppression(b *testing.B) {
	const theta, omega = 0.5, 0.5
	rng := stats.NewRNG(1)
	s := workload.Bernoulli(rng, theta, 200000)
	m := cost.NewMessage(omega)
	var with, without float64
	for i := 0; i < b.N; i++ {
		with = sim.Replay(core.NewSW(1), m, s, 0).PerOp()
		// Unsuppressed variant: re-price the same steps with suppression
		// stripped, turning each omega write into 1+omega.
		p := core.NewSW(1)
		total := 0.0
		for _, op := range s {
			st := p.Apply(op)
			st.DataSuppressed = false
			total += m.StepCost(st)
		}
		without = total / float64(len(s))
	}
	b.ReportMetric(with, "perop-suppressed")
	b.ReportMetric(without, "perop-unsuppressed")
	b.ReportMetric(without-with, "saving")
}

// BenchmarkAblationHandicappedOptimal shows how much of the competitive
// gap comes from the comparator's control-message immunity: ratios against
// an offline optimum that must pay omega like everyone else.
func BenchmarkAblationHandicappedOptimal(b *testing.B) {
	s := workload.SWkAdversary(9, 500)
	m := cost.NewMessage(0.5)
	var idealRatio, handicappedRatio float64
	for i := 0; i < b.N; i++ {
		p := core.NewSW(9)
		online := 0.0
		for _, op := range s {
			online += m.StepCost(p.Apply(op))
		}
		idealRatio = online / offline.Cost(s, offline.Ideal())
		handicappedRatio = online / offline.Cost(s, offline.Handicapped(0.5))
	}
	b.ReportMetric(idealRatio, "ratio-vs-ideal")
	b.ReportMetric(handicappedRatio, "ratio-vs-handicapped")
}

// BenchmarkAblationWindowTransfer weighs the piggybacked window handoff:
// bytes on the wire per handoff message with and without window bits.
func BenchmarkAblationWindowTransfer(b *testing.B) {
	withWin := wire.Message{Kind: wire.KindDeleteReq, Key: "x",
		Window: sched.Block(sched.Read, 95)}
	withoutWin := wire.Message{Kind: wire.KindDeleteReq, Key: "x"}
	var sizeWith, sizeWithout int
	for i := 0; i < b.N; i++ {
		fw, err := wire.Encode(withWin)
		if err != nil {
			b.Fatal(err)
		}
		fo, err := wire.Encode(withoutWin)
		if err != nil {
			b.Fatal(err)
		}
		sizeWith, sizeWithout = len(fw), len(fo)
	}
	b.ReportMetric(float64(sizeWith), "bytes-with-window-k95")
	b.ReportMetric(float64(sizeWithout), "bytes-without-window")
}
