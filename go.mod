module mobirep

go 1.22
