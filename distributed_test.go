package mobirep

import (
	"path/filepath"
	"testing"
	"time"
)

// Facade coverage for distributed.go: the re-exported SC/MC pair driven
// end to end through the public names only.

func TestFacadeDistributedPair(t *testing.T) {
	store := NewStore()
	srv, err := NewServer(store, Static2Mode())
	if err != nil {
		t.Fatal(err)
	}
	serverEnd, clientEnd := NewMemPair()
	sess := srv.Attach(serverEnd)
	defer sess.Detach()
	cli, err := NewClient(clientEnd, Static2Mode())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Disconnect()
	cli.Timeout = 5 * time.Second

	if _, err := srv.Write("x", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	it, err := cli.Read("x")
	if err != nil {
		t.Fatal(err)
	}
	if string(it.Value) != "hello" || it.Version != 1 {
		t.Fatalf("read = v%d %q, want v1 hello", it.Version, it.Value)
	}

	// ST2 keeps a copy after the first read; the next read is local and
	// free on the wire.
	if !cli.HasCopy("x") {
		t.Fatal("ST2 client dropped its copy")
	}
	var snap MeterSnapshot = cli.Meter().Snapshot()
	if _, err := cli.Read("x"); err != nil {
		t.Fatal(err)
	}
	after := cli.Meter().Snapshot()
	if after.DataMsgs != snap.DataMsgs || after.ControlMsgs != snap.ControlMsgs {
		t.Fatalf("local read cost traffic: before %+v after %+v", snap, after)
	}
}

func TestFacadeModes(t *testing.T) {
	cases := []struct {
		mode Mode
		want string
	}{
		{SWMode(9), "SW9"},
		{Static1Mode(), "ST1"},
		{Static2Mode(), "ST2"},
	}
	for _, c := range cases {
		if got := c.mode.String(); got != c.want {
			t.Errorf("mode.String() = %q, want %q", got, c.want)
		}
		if err := c.mode.Validate(); err != nil {
			t.Errorf("%s: %v", c.want, err)
		}
	}
	if err := SWMode(0).Validate(); err == nil {
		t.Error("SWMode(0) validated")
	}
}

func TestFacadeOpenStoreReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "facade.log")
	store, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Put("k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Put("k", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	reopened, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	var it Item
	it, ok := reopened.Get("k")
	if !ok || it.Version != 2 || string(it.Value) != "v2" {
		t.Fatalf("replayed item = %+v (ok=%v), want v2 \"v2\"", it, ok)
	}
}
