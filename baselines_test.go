package mobirep

import (
	"math"
	"testing"
)

func TestFacadeBaselines(t *testing.T) {
	ci := NewCacheInvalidate()
	ci.Apply(Read)
	if !ci.HasCopy() {
		t.Fatal("cache-invalidate should cache on read")
	}
	ew := NewEWMA(0.2)
	for i := 0; i < 50; i++ {
		ew.Apply(Read)
	}
	if !ew.HasCopy() {
		t.Fatal("EWMA should allocate on read-heavy stream")
	}
	band := NewEWMABand(0.2, 0.3, 0.7)
	band.Apply(Write)
	even := NewEvenSW(4)
	even.Apply(Read)
}

func TestFacadeExactExpected(t *testing.T) {
	got, err := ExactExpected(NewSW(7).(EnumerablePolicy), 0.4, ConnectionModel())
	if err != nil {
		t.Fatal(err)
	}
	if want := ExpSWConn(7, 0.4); math.Abs(got-want) > 1e-9 {
		t.Fatalf("exact %v vs formula %v", got, want)
	}
}

func TestFacadeTransient(t *testing.T) {
	curve, err := TransientExpected(NewSW(5).(EnumerablePolicy), 0.3, ConnectionModel(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 100 {
		t.Fatalf("len = %d", len(curve))
	}
	steady, err := ExactExpected(NewSW(5).(EnumerablePolicy), 0.3, ConnectionModel())
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(curve[99] - steady); d > 1e-6 {
		t.Fatalf("transient end %v vs steady %v", curve[99], steady)
	}
}

func TestFacadeGameSolver(t *testing.T) {
	ratio, err := ExactCompetitiveRatio(NewSW(3).(EnumerablePolicy), ConnectionModel(), 16, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ratio-4) > 1e-4 {
		t.Fatalf("SW3 ratio = %v", ratio)
	}
	ok, err := VerifyCompetitive(NewSW(3).(EnumerablePolicy), ConnectionModel(), 4)
	if err != nil || !ok {
		t.Fatalf("verify: %v %v", ok, err)
	}
	cycle, gain, err := WorstSchedule(NewSW(3).(EnumerablePolicy), ConnectionModel(), 3.9)
	if err != nil || len(cycle) == 0 || gain <= 0 {
		t.Fatalf("witness: %v gain=%v err=%v", cycle, gain, err)
	}
	res := MeasureRatio(NewSW(3), ConnectionModel(), cycle.Repeat(500))
	if res.Ratio < 3.8 {
		t.Fatalf("witness ratio %v", res.Ratio)
	}
}

func TestFacadeBursty(t *testing.T) {
	rng := NewRNG(1)
	cfg := BurstyConfig{ThetaA: 0.1, ThetaB: 0.9, SwitchProb: 0.01}
	s, regimes := BurstySchedule(rng, cfg, 5000)
	if len(s) != 5000 || len(regimes) != 5000 {
		t.Fatal("shape")
	}
	exact, err := ExactBurstyExpected(NewSW(5).(EnumerablePolicy), cfg, ConnectionModel())
	if err != nil || exact <= 0 || exact >= 1 {
		t.Fatalf("exact = %v err=%v", exact, err)
	}
}
