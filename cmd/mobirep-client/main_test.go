package main

import "testing"

func TestParseMode(t *testing.T) {
	cases := map[string]string{
		"ST1": "ST1", "ST2": "ST2", "SW1": "SW1", "SW9": "SW9",
	}
	for in, want := range cases {
		m, err := parseMode(in)
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		if m.String() != want {
			t.Fatalf("%q parsed to %q", in, m.String())
		}
	}
	for _, bad := range []string{"", "SW4", "SW0", "sw9", "SW9x", "XX"} {
		if _, err := parseMode(bad); err == nil {
			t.Fatalf("%q: expected error", bad)
		}
	}
}
