package main

import (
	"testing"
	"time"

	"mobirep/internal/db"
	"mobirep/internal/replica"
	"mobirep/internal/transport"
)

func TestParseMode(t *testing.T) {
	cases := map[string]string{
		"ST1": "ST1", "ST2": "ST2", "SW1": "SW1", "SW9": "SW9",
	}
	for in, want := range cases {
		m, err := parseMode(in)
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		if m.String() != want {
			t.Fatalf("%q parsed to %q", in, m.String())
		}
	}
	for _, bad := range []string{"", "SW4", "SW0", "sw9", "SW9x", "XX"} {
		if _, err := parseMode(bad); err == nil {
			t.Fatalf("%q: expected error", bad)
		}
	}
}

// TestChaosWrappedDial mirrors main's -chaos wiring: dial a real TCP
// server, wrap the link in the auto-mode injector, and check reads still
// complete and the fault counters move. Duplication only, so no read can
// be lost.
func TestChaosWrappedDial(t *testing.T) {
	srv, err := replica.NewServer(db.NewStore(), replica.SW(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Write("x", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	ln, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			link, err := ln.Accept()
			if err != nil {
				return
			}
			sess := srv.Attach(link)
			link.Start(func(error) { sess.Detach() })
		}
	}()

	cfg, err := transport.ParseChaosSpec("seed=5,dup=1.0")
	if err != nil {
		t.Fatal(err)
	}
	tcp, err := transport.Dial(ln.Addr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	chaos, err := transport.NewChaos(tcp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer chaos.Close()
	cli, err := replica.NewClient(chaos, replica.SW(3))
	if err != nil {
		t.Fatal(err)
	}
	cli.Timeout = 5 * time.Second
	for i := 0; i < 5; i++ {
		it, err := cli.Read("x")
		if err != nil {
			t.Fatalf("read %d under chaos: %v", i, err)
		}
		if string(it.Value) != "v1" {
			t.Fatalf("read %d returned %q", i, it.Value)
		}
	}
	if st := chaos.Stats(); st.Duplicated == 0 {
		t.Fatalf("chaos injector never fired: %+v", st)
	}
}
