// Command mobirep-client runs a mobile computer (MC) node: it connects to
// a mobirep-server over TCP, issues Poisson-distributed reads against a
// key, and reports the communication cost it measured — the out-of-pocket
// number the paper's whole analysis is about — next to the analytic
// prediction when one applies.
//
// Example, paired with the server example:
//
//	mobirep-client -server 127.0.0.1:7070 -mode SW9 -key x -read-rate 15 -duration 30s
//
// With -reconnect (the default) a supervisor redials dropped links under
// backoff and resynchronizes the warm cache; -heartbeat keeps probing the
// link so silent deaths are noticed; -stale lets offline reads serve the
// last known value, flagged, up to the given age.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"mobirep/internal/obs"
	"mobirep/internal/replica"
	"mobirep/internal/stats"
	"mobirep/internal/transport"
)

func main() {
	server := flag.String("server", "127.0.0.1:7070", "server address")
	modeName := flag.String("mode", "SW9", "allocation mode; must match the server")
	key := flag.String("key", "x", "key to read")
	readRate := flag.Float64("read-rate", 10, "Poisson read rate per second")
	duration := flag.Duration("duration", 30*time.Second, "how long to run")
	omega := flag.Float64("omega", 0.5, "control/data ratio used to price the measured traffic")
	seed := flag.Uint64("seed", 2, "random seed for the read process")
	chaosSpec := flag.String("chaos", "",
		"fault injection on the server link, e.g. seed=7,drop=0.05,dup=0.02,reorder=0.1,delay=0.2,maxdelay=50ms")
	reconnect := flag.String("reconnect", "warm",
		"link recovery: warm (redial + resync, keeps the cache), cold (redial + fresh start), off")
	heartbeat := flag.Duration("heartbeat", 5*time.Second,
		"keepalive probe interval; 0 disables heartbeats (requires -reconnect)")
	staleMax := flag.Duration("stale", 0,
		"serve offline reads from the cache up to this age, flagged stale; 0 fails them fast")
	debugAddr := flag.String("debug-addr", "",
		"HTTP listen address for /metrics, /healthz, /events and /debug/pprof (empty = disabled; use 127.0.0.1:0 for an ephemeral port)")
	coalesce := flag.Bool("coalesce", true,
		"batch outbound frames into writev calls on the server link (off forces one write per frame)")
	flag.Parse()

	mode, err := parseMode(*modeName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	chaosCfg, err := transport.ParseChaosSpec(*chaosSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *reconnect != "warm" && *reconnect != "cold" && *reconnect != "off" {
		fmt.Fprintf(os.Stderr, "-reconnect %q: want warm, cold or off\n", *reconnect)
		os.Exit(2)
	}
	if *debugAddr != "" {
		bound, stop, err := obs.Serve(*debugAddr, obs.Default(), obs.DefaultTracer())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer stop()
		fmt.Printf("debug endpoints on http://%s/metrics\n", bound)
	}

	// The dialer rebuilds the full link stack — TCP, optional chaos wrap,
	// close callback into the supervisor — on every (re)connection. Each
	// redial derives a fresh chaos seed so fault schedules do not repeat.
	var sup atomic.Pointer[replica.Supervisor]
	var lastChaos atomic.Pointer[transport.Chaos]
	var dialN atomic.Uint64
	dial := func() (transport.Link, error) {
		tcp, err := transport.DialLink(*server, nil, func(error) {
			if s := sup.Load(); s != nil {
				s.Suspect()
			}
		})
		if err != nil {
			return nil, err
		}
		if *coalesce {
			tcp.SetCoalesce(true)
		}
		if !chaosCfg.Enabled() {
			return tcp, nil
		}
		cfg := chaosCfg
		cfg.Seed += dialN.Add(1)
		chaos, err := transport.NewChaos(tcp, cfg)
		if err != nil {
			tcp.Close()
			return nil, err
		}
		lastChaos.Store(chaos)
		return chaos, nil
	}

	link, err := dial()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dial:", err)
		os.Exit(1)
	}
	defer link.Close()
	if chaosCfg.Enabled() {
		fmt.Printf("chaos enabled on the server link: %s\n", *chaosSpec)
	}
	cli, err := replica.NewClient(link, mode)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// A silent link is declared suspect after this long; with -reconnect
	// the supervisor then redials, so keep it short enough to matter
	// within a demo run.
	cli.Timeout = 2 * time.Second
	if *staleMax > 0 {
		cli.AllowStale(*staleMax)
	}
	if *reconnect != "off" {
		s := replica.NewSupervisor(cli, dial, replica.SupervisorConfig{
			HeartbeatEvery: *heartbeat,
			Cold:           *reconnect == "cold",
			Seed:           int64(*seed),
		})
		sup.Store(s)
		s.Start()
		defer s.Stop()
	}

	fmt.Printf("mobirep-client: mode=%s reading %q at %.1f/s for %v (reconnect=%s)\n",
		mode, *key, *readRate, *duration, *reconnect)
	rng := stats.NewRNG(*seed)
	deadline := time.Now().Add(*duration)
	reads, stales, readErrs, streak := 0, 0, 0, 0
	for time.Now().Before(deadline) {
		time.Sleep(time.Duration(rng.Exp(*readRate) * float64(time.Second)))
		_, err := cli.Read(*key)
		switch {
		case err == nil:
			reads++
			streak = 0
		case errors.Is(err, replica.ErrStale):
			// Served from the warm cache while offline, explicitly flagged.
			reads++
			stales++
			streak = 0
		default:
			readErrs++
			streak++
			fmt.Fprintln(os.Stderr, "read:", err)
			if streak > 10 {
				fmt.Fprintln(os.Stderr, "giving up after 10 consecutive failures")
				goto report
			}
		}
	}
report:

	mc := cli.Meter().Snapshot()
	cs := cli.Cache().Stats()
	fmt.Printf("reads issued:        %d (stale %d, errors %d)\n", reads, stales, readErrs)
	fmt.Printf("cache:               hits=%d misses=%d installs=%d drops=%d updates=%d (hit rate %.1f%%)\n",
		cs.Hits, cs.Misses, cs.Installs, cs.Drops, cs.Updates, 100*cs.HitRate())
	fmt.Printf("MC-side traffic:     data=%d control=%d bytes=%d\n", mc.DataMsgs, mc.ControlMsgs, mc.Bytes)
	fmt.Printf("MC-side cost:        connection=%.0f message(omega=%.2f)=%.2f\n",
		mc.ConnectionCost(), *omega, mc.MessageCost(*omega))
	if s := sup.Load(); s != nil {
		st := s.Stats()
		fmt.Printf("recovery:            suspects=%d dials=%d reconnects=%d heartbeat-misses=%d busy-signals=%d\n",
			st.Suspects, st.DialAttempts, st.Reconnects, st.HeartbeatMisses, st.BusySignals)
	}
	if chaos := lastChaos.Load(); chaos != nil {
		st := chaos.Stats()
		fmt.Printf("chaos faults:        sent=%d delivered=%d dropped=%d duplicated=%d deferred=%d\n",
			st.Sent, st.Delivered, st.Dropped, st.Duplicated, st.Deferred)
	}
	fmt.Println("note: the server meters its own side; total cost is the sum of both meters")
}

func parseMode(name string) (replica.Mode, error) {
	switch name {
	case "ST1":
		return replica.Static1(), nil
	case "ST2":
		return replica.Static2(), nil
	}
	var k int
	if n, err := fmt.Sscanf(name, "SW%d", &k); err == nil && n == 1 && fmt.Sprintf("SW%d", k) == name {
		m := replica.SW(k)
		if err := m.Validate(); err != nil {
			return replica.Mode{}, err
		}
		return m, nil
	}
	return replica.Mode{}, fmt.Errorf("unknown mode %q (want ST1, ST2 or SWk)", name)
}
