// Command mobirep-client runs a mobile computer (MC) node: it connects to
// a mobirep-server over TCP, issues Poisson-distributed reads against a
// key, and reports the communication cost it measured — the out-of-pocket
// number the paper's whole analysis is about — next to the analytic
// prediction when one applies.
//
// Example, paired with the server example:
//
//	mobirep-client -server 127.0.0.1:7070 -mode SW9 -key x -read-rate 15 -duration 30s
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mobirep/internal/replica"
	"mobirep/internal/stats"
	"mobirep/internal/transport"
)

func main() {
	server := flag.String("server", "127.0.0.1:7070", "server address")
	modeName := flag.String("mode", "SW9", "allocation mode; must match the server")
	key := flag.String("key", "x", "key to read")
	readRate := flag.Float64("read-rate", 10, "Poisson read rate per second")
	duration := flag.Duration("duration", 30*time.Second, "how long to run")
	omega := flag.Float64("omega", 0.5, "control/data ratio used to price the measured traffic")
	seed := flag.Uint64("seed", 2, "random seed for the read process")
	chaosSpec := flag.String("chaos", "",
		"fault injection on the server link, e.g. seed=7,drop=0.05,dup=0.02,reorder=0.1,delay=0.2,maxdelay=50ms")
	flag.Parse()

	mode, err := parseMode(*modeName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	chaosCfg, err := transport.ParseChaosSpec(*chaosSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	tcp, err := transport.Dial(*server, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dial:", err)
		os.Exit(1)
	}
	var link transport.Link = tcp
	var chaos *transport.Chaos
	if chaosCfg.Enabled() {
		chaos, err = transport.NewChaos(tcp, chaosCfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "chaos:", err)
			os.Exit(2)
		}
		link = chaos
		fmt.Printf("chaos enabled on the server link: %s\n", *chaosSpec)
	}
	defer link.Close()
	cli, err := replica.NewClient(link, mode)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cli.Timeout = 10 * time.Second

	fmt.Printf("mobirep-client: mode=%s reading %q at %.1f/s for %v\n", mode, *key, *readRate, *duration)
	rng := stats.NewRNG(*seed)
	deadline := time.Now().Add(*duration)
	reads, errors := 0, 0
	for time.Now().Before(deadline) {
		time.Sleep(time.Duration(rng.Exp(*readRate) * float64(time.Second)))
		if _, err := cli.Read(*key); err != nil {
			errors++
			fmt.Fprintln(os.Stderr, "read:", err)
			if errors > 10 {
				break
			}
			continue
		}
		reads++
	}

	mc := cli.Meter().Snapshot()
	cs := cli.Cache().Stats()
	fmt.Printf("reads issued:        %d (errors %d)\n", reads, errors)
	fmt.Printf("cache:               hits=%d misses=%d installs=%d drops=%d updates=%d (hit rate %.1f%%)\n",
		cs.Hits, cs.Misses, cs.Installs, cs.Drops, cs.Updates, 100*cs.HitRate())
	fmt.Printf("MC-side traffic:     data=%d control=%d bytes=%d\n", mc.DataMsgs, mc.ControlMsgs, mc.Bytes)
	fmt.Printf("MC-side cost:        connection=%.0f message(omega=%.2f)=%.2f\n",
		mc.ConnectionCost(), *omega, mc.MessageCost(*omega))
	if chaos != nil {
		st := chaos.Stats()
		fmt.Printf("chaos faults:        sent=%d delivered=%d dropped=%d duplicated=%d deferred=%d\n",
			st.Sent, st.Delivered, st.Dropped, st.Duplicated, st.Deferred)
	}
	fmt.Println("note: the server meters its own side; total cost is the sum of both meters")
}

func parseMode(name string) (replica.Mode, error) {
	switch name {
	case "ST1":
		return replica.Static1(), nil
	case "ST2":
		return replica.Static2(), nil
	}
	var k int
	if n, err := fmt.Sscanf(name, "SW%d", &k); err == nil && n == 1 && fmt.Sprintf("SW%d", k) == name {
		m := replica.SW(k)
		if err := m.Validate(); err != nil {
			return replica.Mode{}, err
		}
		return m, nil
	}
	return replica.Mode{}, fmt.Errorf("unknown mode %q (want ST1, ST2 or SWk)", name)
}
