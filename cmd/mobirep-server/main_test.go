package main

import (
	"testing"
	"time"

	"mobirep/internal/db"
	"mobirep/internal/replica"
	"mobirep/internal/transport"
)

func TestParseMode(t *testing.T) {
	cases := map[string]string{
		"ST1": "ST1", "ST2": "ST2", "SW1": "SW1", "SW9": "SW9",
	}
	for in, want := range cases {
		m, err := parseMode(in)
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		if m.String() != want {
			t.Fatalf("%q parsed to %q", in, m.String())
		}
	}
	for _, bad := range []string{"", "SW4", "SW0", "sw9", "SW9x", "XX"} {
		if _, err := parseMode(bad); err == nil {
			t.Fatalf("%q: expected error", bad)
		}
	}
}

// TestChaosSpecAccepted runs the accept loop with the -chaos injector
// enabled and checks a real TCP client still completes reads. The spec
// duplicates aggressively but never loses frames, so the run is flaky-free:
// the protocol must simply survive the duplicates.
func TestChaosSpecAccepted(t *testing.T) {
	cfg, err := transport.ParseChaosSpec("seed=3,dup=1.0")
	if err != nil {
		t.Fatal(err)
	}
	store := db.NewStore()
	srv, err := replica.NewServer(store, replica.SW(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Write("x", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	addr, err := listenAndServe(srv, "127.0.0.1:0", cfg, true, 1<<20, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}

	link, err := transport.Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()
	cli, err := replica.NewClient(link, replica.SW(3))
	if err != nil {
		t.Fatal(err)
	}
	cli.Timeout = 5 * time.Second
	for i := 0; i < 5; i++ {
		it, err := cli.Read("x")
		if err != nil {
			t.Fatalf("read %d under chaos: %v", i, err)
		}
		if string(it.Value) != "v1" {
			t.Fatalf("read %d returned %q", i, it.Value)
		}
	}
}

func TestChaosSpecRejected(t *testing.T) {
	if _, err := transport.ParseChaosSpec("drop=1.5"); err == nil {
		t.Fatal("out-of-range drop accepted")
	}
	if _, err := transport.ParseChaosSpec("bogus"); err == nil {
		t.Fatal("malformed spec accepted")
	}
}
