// Command mobirep-server runs a stationary computer (SC) node: it owns the
// online database, accepts mobile clients over TCP, and optionally issues
// Poisson-distributed writes to a key so a client on the other end can
// observe the full allocation protocol.
//
// Example:
//
//	mobirep-server -listen 127.0.0.1:7070 -mode SW9 -key x -write-rate 5
//
// With -parent the process runs as a relay support station instead: an
// in-memory mirror served to its own clients (mobile computers or deeper
// relays), read-through and write propagation to the parent server over
// TCP, with the parent link supervised (redial + warm resync) like a
// mobile client's. Chaining relays builds the replica tree one process
// per station:
//
//	mobirep-server -listen :7070 -mode ST2 -log root.log       # the root
//	mobirep-server -listen :7071 -mode ST2 -parent :7070 \
//	    -placement T1:2                                        # a relay
//	mobirep-client -server 127.0.0.1:7071 -mode ST2 -key x
package main

import (
	"flag"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"mobirep/internal/db"
	"mobirep/internal/obs"
	"mobirep/internal/replica"
	"mobirep/internal/stats"
	"mobirep/internal/transport"
	"mobirep/internal/tree"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7070", "TCP listen address")
	modeName := flag.String("mode", "SW9", "allocation mode: ST1, ST2 or SWk")
	shards := flag.Int("shards", 0, "session shard count (power of two, 0 = one per CPU)")
	key := flag.String("key", "x", "key to auto-write")
	writeRate := flag.Float64("write-rate", 0, "Poisson write rate per second (0 = no auto writes)")
	logPath := flag.String("log", "", "append-only persistence log (empty = in-memory)")
	syncPolicy := flag.String("sync", "group",
		"durability policy for -log: always (fsync per write), group (group commit, default) or never (fsync only at shutdown)")
	groupInterval := flag.Duration("group-commit-interval", 0,
		"upper bound on how long a group-commit leader waits to grow a batch (0 = natural batching); only meaningful with -sync=group")
	seed := flag.Uint64("seed", 1, "random seed for the write process")
	statsEvery := flag.Duration("stats-every", 10*time.Second, "meter print interval")
	chaosSpec := flag.String("chaos", "",
		"fault injection on client links, e.g. seed=7,drop=0.05,dup=0.02,reorder=0.1,delay=0.2,maxdelay=50ms,crash=0.001,part=0.01,partlen=20")
	sessionTTL := flag.Duration("session-ttl", 0,
		"detach sessions silent for this long (half-open links); 0 disables the reaper; clients must heartbeat well under it")
	debugAddr := flag.String("debug-addr", "",
		"HTTP listen address for /metrics, /healthz, /events and /debug/pprof (empty = disabled; use 127.0.0.1:0 for an ephemeral port)")
	coalesce := flag.Bool("coalesce", true,
		"batch outbound frames into writev calls on client links (lower syscall cost under fan-out; off forces one write per frame)")
	maxSessions := flag.Int("max-sessions", 0,
		"admission cap on concurrently attached sessions; attaches past it are refused with a Busy frame (0 = unlimited)")
	attachRate := flag.Float64("attach-rate", 0,
		"admission cap on attaches per second, smoothed by a per-shard token bucket (0 = unlimited)")
	retryAfter := flag.Duration("retry-after", time.Second,
		"retry-after hint carried in Busy refusals and shed evictions")
	outboxBytes := flag.Int("outbox-bytes", 1<<20,
		"per-client outbox byte bound; a slow consumer whose queue would exceed it is disconnected (0 = unbounded)")
	writeTimeout := flag.Duration("write-timeout", 10*time.Second,
		"per-client write deadline; a peer that stops reading is disconnected when a write stalls this long (0 = none)")
	memSoftLimit := flag.Int64("mem-soft-limit", 0,
		"soft watermark on accounted session+outbox bytes; while over it, idle-longest sessions are shed with Busy frames (0 = disabled)")
	shedEvery := flag.Duration("shed-every", time.Second, "mem-soft-limit enforcement interval")
	parent := flag.String("parent", "",
		"parent server address; set to run as a relay support station (in-memory mirror, read-through and propagation to the parent) instead of the root")
	placementSpec := flag.String("placement", "none",
		"relay placement policy for the mirror: none, SWk, T1:m or T2:m (only with -parent)")
	heartbeat := flag.Duration("heartbeat", 5*time.Second,
		"keepalive probe interval on the parent link (only with -parent)")
	flag.Parse()

	mode, err := parseMode(*modeName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	chaosCfg, err := transport.ParseChaosSpec(*chaosSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	pol, err := db.ParseSyncPolicy(*syncPolicy)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var store *db.Store
	var srv *replica.Server
	if *parent != "" {
		// Relay mode: the mirror is rebuilt warm from the parent on every
		// restart, so a persistence log would only record derived state.
		if *logPath != "" {
			fmt.Fprintln(os.Stderr, "-log is the root's job; a relay's mirror is in-memory (drop -log or -parent)")
			os.Exit(2)
		}
		if *writeRate > 0 {
			fmt.Fprintln(os.Stderr, "-write-rate needs the authoritative store; point it at the root, not a relay")
			os.Exit(2)
		}
		place, err := tree.ParsePolicy(*placementSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		st, err := tree.NewRelay(1, mode, *shards, place)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		// The parent link gets the same supervision as a mobile client's
		// server link: suspect on close, redial under backoff, warm resync.
		// An epoch fence from a restarted root reaches the children through
		// the station's InvalidateAll cascade.
		var sup atomic.Pointer[replica.Supervisor]
		dial := func() (transport.Link, error) {
			tcp, err := transport.DialLink(*parent, nil, func(error) {
				if s := sup.Load(); s != nil {
					s.Suspect()
				}
			})
			if err != nil {
				return nil, err
			}
			if *coalesce {
				tcp.SetCoalesce(true)
			}
			return tcp, nil
		}
		link, err := dial()
		if err != nil {
			fmt.Fprintln(os.Stderr, "dial parent:", err)
			os.Exit(1)
		}
		if err := st.ConnectParent(link); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		s := replica.NewSupervisor(st.Client(), dial, replica.SupervisorConfig{
			HeartbeatEvery: *heartbeat,
			Seed:           int64(*seed),
		})
		sup.Store(s)
		s.Start()
		defer s.Stop()
		store = st.Store()
		srv = st.Server()
		fmt.Printf("relay: parent=%s placement=%s\n", *parent, place)
	} else {
		if *logPath != "" {
			store, err = db.OpenWith(db.Options{Path: *logPath, Sync: pol, GroupInterval: *groupInterval})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer store.Close()
			fmt.Printf("store: log=%s sync=%s epoch=%d\n", *logPath, store.SyncPolicyInUse(), store.Epoch())
		} else {
			store = db.NewStore()
		}
		srv, err = replica.NewServerShards(store, mode, *shards)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *maxSessions > 0 || *attachRate > 0 {
		if err := srv.SetAdmission(replica.AdmissionConfig{
			MaxSessions: *maxSessions,
			AttachRate:  *attachRate,
			RetryAfter:  *retryAfter,
		}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	if *memSoftLimit > 0 {
		srv.SetMemSoftLimit(*memSoftLimit)
		go func(every time.Duration) {
			for range time.Tick(every) {
				if n := srv.ShedToBudget(); n > 0 {
					fmt.Printf("shed %d session(s) to the memory budget\n", n)
				}
			}
		}(*shedEvery)
	}

	ln, err := listenAndServe(srv, *listen, chaosCfg, *coalesce, *outboxBytes, *writeTimeout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("mobirep-server: mode=%s shards=%d listening on %s\n", mode, srv.Shards(), ln)
	if chaosCfg.Enabled() {
		fmt.Printf("chaos enabled on client links: %s\n", *chaosSpec)
	}
	if *debugAddr != "" {
		bound, stop, err := obs.Serve(*debugAddr, obs.Default(), obs.DefaultTracer())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer stop()
		fmt.Printf("debug endpoints on http://%s/metrics\n", bound)
	}

	if *writeRate > 0 {
		go writeLoop(srv, *key, *writeRate, *seed)
	}
	if *sessionTTL > 0 {
		go func(ttl time.Duration) {
			for range time.Tick(ttl / 2) {
				if n := srv.ExpireIdle(ttl); n > 0 {
					fmt.Printf("reaped %d idle session(s)\n", n)
				}
			}
		}(*sessionTTL)
	}
	for {
		time.Sleep(*statsEvery)
		it, ok := store.Get(*key)
		if ok {
			fmt.Printf("key %q at version %d\n", *key, it.Version)
		}
	}
}

// listenAndServe accepts clients forever in the background and returns the
// bound address. When chaos is enabled every client link is wrapped in the
// fault injector, each connection on its own derived seed. Every accepted
// link gets the outbox bound and write deadline before the session sees
// it, and attaches go through admission control — a refused client is
// answered with Busy and its connection closed without a session ever
// existing.
func listenAndServe(srv *replica.Server, addr string, chaosCfg transport.Config, coalesce bool, outboxBytes int, writeTimeout time.Duration) (string, error) {
	ln, err := transport.Listen(addr)
	if err != nil {
		return "", err
	}
	go func() {
		for conn := uint64(0); ; conn++ {
			link, err := ln.Accept()
			if err != nil {
				return
			}
			if coalesce {
				link.SetCoalesce(true)
			}
			if outboxBytes > 0 {
				link.SetQueueLimit(outboxBytes)
			}
			if writeTimeout > 0 {
				link.SetWriteTimeout(writeTimeout)
			}
			var attached transport.Link = link
			if chaosCfg.Enabled() {
				cfg := chaosCfg
				cfg.Seed += conn
				chaos, err := transport.NewChaos(link, cfg)
				if err != nil {
					fmt.Fprintln(os.Stderr, "chaos:", err)
					link.Close()
					continue
				}
				attached = chaos
			}
			sess, err := srv.TryAttach(attached)
			if err != nil {
				fmt.Println("client refused: server busy")
				continue
			}
			link.Start(func(err error) {
				sess.Detach()
				if err != nil {
					fmt.Fprintln(os.Stderr, "client link:", err)
				} else {
					fmt.Println("client detached")
				}
			})
			fmt.Println("client attached")
		}
	}()
	return ln.Addr(), nil
}

func parseMode(name string) (replica.Mode, error) {
	switch name {
	case "ST1":
		return replica.Static1(), nil
	case "ST2":
		return replica.Static2(), nil
	}
	var k int
	if n, err := fmt.Sscanf(name, "SW%d", &k); err == nil && n == 1 && fmt.Sprintf("SW%d", k) == name {
		m := replica.SW(k)
		if err := m.Validate(); err != nil {
			return replica.Mode{}, err
		}
		return m, nil
	}
	return replica.Mode{}, fmt.Errorf("unknown mode %q (want ST1, ST2 or SWk)", name)
}

func writeLoop(srv *replica.Server, key string, rate float64, seed uint64) {
	rng := stats.NewRNG(seed)
	for i := uint64(1); ; i++ {
		time.Sleep(time.Duration(rng.Exp(rate) * float64(time.Second)))
		if _, err := srv.Write(key, fmt.Appendf(nil, "auto-%d", i)); err != nil {
			fmt.Fprintln(os.Stderr, "write:", err)
			return
		}
	}
}
