// Command mobirep-server runs a stationary computer (SC) node: it owns the
// online database, accepts mobile clients over TCP, and optionally issues
// Poisson-distributed writes to a key so a client on the other end can
// observe the full allocation protocol.
//
// Example:
//
//	mobirep-server -listen 127.0.0.1:7070 -mode SW9 -key x -write-rate 5
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mobirep/internal/db"
	"mobirep/internal/replica"
	"mobirep/internal/stats"
	"mobirep/internal/transport"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7070", "TCP listen address")
	modeName := flag.String("mode", "SW9", "allocation mode: ST1, ST2 or SWk")
	key := flag.String("key", "x", "key to auto-write")
	writeRate := flag.Float64("write-rate", 0, "Poisson write rate per second (0 = no auto writes)")
	logPath := flag.String("log", "", "append-only persistence log (empty = in-memory)")
	seed := flag.Uint64("seed", 1, "random seed for the write process")
	statsEvery := flag.Duration("stats-every", 10*time.Second, "meter print interval")
	flag.Parse()

	mode, err := parseMode(*modeName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var store *db.Store
	if *logPath != "" {
		store, err = db.Open(*logPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer store.Close()
	} else {
		store = db.NewStore()
	}

	srv, err := replica.NewServer(store, mode)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	ln, err := listenAndServe(srv, *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("mobirep-server: mode=%s listening on %s\n", mode, ln)

	if *writeRate > 0 {
		go writeLoop(srv, *key, *writeRate, *seed)
	}
	for {
		time.Sleep(*statsEvery)
		it, ok := store.Get(*key)
		if ok {
			fmt.Printf("key %q at version %d\n", *key, it.Version)
		}
	}
}

// listenAndServe accepts clients forever in the background and returns the
// bound address.
func listenAndServe(srv *replica.Server, addr string) (string, error) {
	ln, err := transport.Listen(addr)
	if err != nil {
		return "", err
	}
	go func() {
		for {
			link, err := ln.Accept()
			if err != nil {
				return
			}
			sess := srv.Attach(link)
			link.Start(func(err error) {
				sess.Detach()
				if err != nil {
					fmt.Fprintln(os.Stderr, "client link:", err)
				} else {
					fmt.Println("client detached")
				}
			})
			fmt.Println("client attached")
		}
	}()
	return ln.Addr(), nil
}

func parseMode(name string) (replica.Mode, error) {
	switch name {
	case "ST1":
		return replica.Static1(), nil
	case "ST2":
		return replica.Static2(), nil
	}
	var k int
	if n, err := fmt.Sscanf(name, "SW%d", &k); err == nil && n == 1 && fmt.Sprintf("SW%d", k) == name {
		m := replica.SW(k)
		if err := m.Validate(); err != nil {
			return replica.Mode{}, err
		}
		return m, nil
	}
	return replica.Mode{}, fmt.Errorf("unknown mode %q (want ST1, ST2 or SWk)", name)
}

func writeLoop(srv *replica.Server, key string, rate float64, seed uint64) {
	rng := stats.NewRNG(seed)
	for i := uint64(1); ; i++ {
		time.Sleep(time.Duration(rng.Exp(rate) * float64(time.Second)))
		if _, err := srv.Write(key, fmt.Appendf(nil, "auto-%d", i)); err != nil {
			fmt.Fprintln(os.Stderr, "write:", err)
			return
		}
	}
}
