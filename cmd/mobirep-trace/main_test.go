package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func runCapture(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code := run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestGenInfoCostPipeline(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "t.txt")

	code, out, _ := runCapture(t, "gen", "-out", trace, "-lambda-r", "3", "-lambda-w", "1", "-n", "2000", "-seed", "7")
	if code != 0 {
		t.Fatalf("gen exit %d", code)
	}
	if !strings.Contains(out, "wrote 2000 requests") || !strings.Contains(out, "theta = 0.250") {
		t.Fatalf("gen output: %q", out)
	}

	code, out, _ = runCapture(t, "info", "-in", trace)
	if code != 0 {
		t.Fatalf("info exit %d", code)
	}
	for _, want := range []string{"requests:  2000", "theta:", "runs:", "offline:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("info output missing %q:\n%s", want, out)
		}
	}
	// Empirical theta should be near 0.25.
	if !strings.Contains(out, "theta:     0.2") {
		t.Fatalf("info theta: %q", out)
	}

	code, out, _ = runCapture(t, "cost", "-in", trace, "-policy", "SW9", "-policy", "ST1", "-omega", "0.25")
	if code != 0 {
		t.Fatalf("cost exit %d", code)
	}
	for _, want := range []string{"OPT", "SW9", "ST1", "vs offline"} {
		if !strings.Contains(out, want) {
			t.Fatalf("cost output missing %q:\n%s", want, out)
		}
	}
}

func TestCostDefaultPolicies(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "t.txt")
	if code, _, _ := runCapture(t, "gen", "-out", trace, "-n", "100"); code != 0 {
		t.Fatal("gen failed")
	}
	code, out, _ := runCapture(t, "cost", "-in", trace)
	if code != 0 {
		t.Fatalf("cost exit %d", code)
	}
	for _, p := range []string{"ST1", "ST2", "SW1", "SW9"} {
		if !strings.Contains(out, p) {
			t.Fatalf("default policy %s missing:\n%s", p, out)
		}
	}
}

func TestUsageAndErrors(t *testing.T) {
	if code, _, errOut := runCapture(t); code != 2 || !strings.Contains(errOut, "usage") {
		t.Fatalf("no-args: code=%d err=%q", code, errOut)
	}
	if code, _, _ := runCapture(t, "bogus"); code != 2 {
		t.Fatalf("bogus subcommand: code=%d", code)
	}
	if code, _, errOut := runCapture(t, "info", "-in", "/nonexistent/file"); code != 1 || errOut == "" {
		t.Fatalf("missing file: code=%d err=%q", code, errOut)
	}
	if code, _, _ := runCapture(t, "cost", "-in", "/nonexistent/file"); code != 1 {
		t.Fatal("cost on missing file should fail")
	}
	trace := filepath.Join(t.TempDir(), "t.txt")
	runCapture(t, "gen", "-out", trace, "-n", "10")
	if code, _, errOut := runCapture(t, "cost", "-in", trace, "-policy", "BOGUS"); code != 1 || !strings.Contains(errOut, "unknown policy") {
		t.Fatalf("bogus policy: code=%d err=%q", code, errOut)
	}
	if code, _, _ := runCapture(t, "gen", "-badflag"); code != 1 {
		t.Fatal("bad flag should fail")
	}
}

func TestMultiFlag(t *testing.T) {
	var m multiFlag
	m.Set("a")
	m.Set("b")
	if m.String() != "[a b]" || len(m) != 2 {
		t.Fatalf("multiFlag = %v", m)
	}
}
