// Command mobirep-trace generates, inspects and re-prices request traces.
//
// Subcommands:
//
//	gen  -out trace.txt -lambda-r 2 -lambda-w 1 -n 10000 [-seed N]
//	    Sample the paper's Poisson workload and write a timed trace.
//
//	info -in trace.txt
//	    Print counts, the empirical theta, and run-length structure.
//
//	cost -in trace.txt -policy SW9 [-policy ST1 ...] [-omega 0.5]
//	    Replay the trace through policies and print each one's cost in
//	    both models, next to the ideal offline optimum.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mobirep/internal/cost"
	"mobirep/internal/offline"
	"mobirep/internal/sim"
	"mobirep/internal/stats"
	"mobirep/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run dispatches the subcommands; split from main for testability.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		fmt.Fprintln(stderr, "usage: mobirep-trace {gen|info|cost} [flags]")
		return 2
	}
	var err error
	switch args[0] {
	case "gen":
		err = cmdGen(args[1:], stdout)
	case "info":
		err = cmdInfo(args[1:], stdout)
	case "cost":
		err = cmdCost(args[1:], stdout)
	default:
		fmt.Fprintln(stderr, "usage: mobirep-trace {gen|info|cost} [flags]")
		return 2
	}
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	return 0
}

func cmdGen(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	out := fs.String("out", "trace.txt", "output file")
	lambdaR := fs.Float64("lambda-r", 2, "read rate")
	lambdaW := fs.Float64("lambda-w", 1, "write rate")
	n := fs.Int("n", 10000, "number of requests")
	seed := fs.Uint64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	rng := stats.NewRNG(*seed)
	ops := workload.PoissonMerged(rng, *lambdaR, *lambdaW, *n)
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := workload.WriteTimed(f, ops); err != nil {
		return err
	}
	theta := *lambdaW / (*lambdaW + *lambdaR)
	fmt.Fprintf(stdout, "wrote %d requests to %s (theta = %.3f)\n", len(ops), *out, theta)
	return nil
}

func cmdInfo(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("info", flag.ContinueOnError)
	in := fs.String("in", "trace.txt", "input file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	ops, err := load(*in)
	if err != nil {
		return err
	}
	s := workload.StripTimes(ops)
	reads, writes := s.Counts()
	fmt.Fprintf(stdout, "requests:  %d (%d reads, %d writes)\n", len(s), reads, writes)
	fmt.Fprintf(stdout, "theta:     %.4f (empirical write fraction)\n", s.WriteFraction())
	if len(ops) > 1 {
		span := ops[len(ops)-1].At - ops[0].At
		fmt.Fprintf(stdout, "time span: %.2f (rate %.3f requests/unit)\n", span, float64(len(ops))/span)
	}
	runs := s.Runs()
	longest := 0
	for _, r := range runs {
		if r.Len > longest {
			longest = r.Len
		}
	}
	fmt.Fprintf(stdout, "runs:      %d maximal runs, longest %d\n", len(runs), longest)
	fmt.Fprintf(stdout, "burstiness: lag-1 autocorrelation %+.4f (0 = Poisson-like, >0 = bursty)\n",
		s.Lag1Correlation())
	fmt.Fprintf(stdout, "offline:   ideal optimum costs %.0f on this trace\n",
		offline.Cost(s, offline.Ideal()))
	return nil
}

func cmdCost(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("cost", flag.ContinueOnError)
	in := fs.String("in", "trace.txt", "input file")
	omega := fs.Float64("omega", 0.5, "control/data ratio for the message model")
	var policies multiFlag
	fs.Var(&policies, "policy", "policy to replay (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(policies) == 0 {
		policies = []string{"ST1", "ST2", "SW1", "SW9"}
	}

	ops, err := load(*in)
	if err != nil {
		return err
	}
	s := workload.StripTimes(ops)
	opt := offline.Cost(s, offline.Ideal())
	fmt.Fprintf(stdout, "%-8s %14s %18s %12s\n", "policy", "connections", "message(w="+fmt.Sprintf("%.2f", *omega)+")", "vs offline")
	fmt.Fprintf(stdout, "%-8s %14.0f %18.2f %12s\n", "OPT", opt, opt, "1.00")
	for _, name := range policies {
		factory, err := sim.ParsePolicy(name)
		if err != nil {
			return err
		}
		conn := sim.Replay(factory(), cost.NewConnection(), s, 0).Cost
		msg := sim.Replay(factory(), cost.NewMessage(*omega), s, 0).Cost
		ratio := "inf"
		if opt > 0 {
			ratio = fmt.Sprintf("%.2f", conn/opt)
		}
		fmt.Fprintf(stdout, "%-8s %14.0f %18.2f %12s\n", name, conn, msg, ratio)
	}
	return nil
}

func load(path string) ([]workload.TimedOp, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return workload.ReadTimed(f)
}

type multiFlag []string

func (m *multiFlag) String() string { return fmt.Sprint([]string(*m)) }
func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}
