package main

import (
	"bytes"
	"strings"
	"testing"
)

func runCapture(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code := run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestRatioConnection(t *testing.T) {
	code, out, _ := runCapture(t, "-policy", "SW3")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "exactly 4.0000") {
		t.Fatalf("output: %q", out)
	}
}

func TestRatioMessage(t *testing.T) {
	code, out, _ := runCapture(t, "-policy", "SW1", "-model", "message", "-omega", "0.5")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "exactly 2.0000") {
		t.Fatalf("output: %q", out)
	}
}

func TestNotCompetitive(t *testing.T) {
	code, out, _ := runCapture(t, "-policy", "ST1", "-limit", "32")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "NOT competitive") {
		t.Fatalf("output: %q", out)
	}
}

func TestVerifyBound(t *testing.T) {
	code, out, _ := runCapture(t, "-policy", "T1(4)", "-verify", "5")
	if code != 0 || !strings.Contains(out, "true") {
		t.Fatalf("exit %d out %q", code, out)
	}
	code, out, _ = runCapture(t, "-policy", "T1(4)", "-verify", "4.5")
	if code != 3 || !strings.Contains(out, "false") {
		t.Fatalf("failed bound: exit %d out %q", code, out)
	}
}

func TestWitness(t *testing.T) {
	code, out, _ := runCapture(t, "-policy", "SW3", "-witness")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "witness cycle") || !strings.Contains(out, "force ratio") {
		t.Fatalf("output: %q", out)
	}
	// The check line should report something near 4.
	if !strings.Contains(out, "force ratio 4.0") && !strings.Contains(out, "force ratio 3.9") {
		t.Fatalf("witness ratio line: %q", out)
	}
}

func TestBadInputs(t *testing.T) {
	if code, _, _ := runCapture(t, "-policy", "NOPE"); code != 2 {
		t.Fatal("bad policy accepted")
	}
	if code, _, errOut := runCapture(t, "-policy", "EWMA(0.5)"); code != 2 ||
		!strings.Contains(errOut, "not finite-state") {
		t.Fatal("EWMA should be rejected as non-enumerable")
	}
	if code, _, _ := runCapture(t, "-model", "pigeon"); code != 2 {
		t.Fatal("bad model accepted")
	}
	if code, _, _ := runCapture(t, "-badflag"); code != 2 {
		t.Fatal("bad flag accepted")
	}
}
