// Command mobirep-game runs the mechanized competitive analysis: for any
// finite-state allocation policy it computes the exact competitive ratio
// against the ideal offline algorithm, verifies a claimed bound, or
// extracts the adversarial witness schedule — the paper's worst-case
// theorems as a command line.
//
// Examples:
//
//	mobirep-game -policy SW9                      # ratio in the connection model
//	mobirep-game -policy SW3 -model message -omega 0.5
//	mobirep-game -policy T1(4) -verify 5          # is T1(4) 5-competitive?
//	mobirep-game -policy SW5 -witness             # print the adversary's cycle
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"mobirep/internal/analytic"
	"mobirep/internal/core"
	"mobirep/internal/cost"
	"mobirep/internal/offline"
	"mobirep/internal/sim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main's testable body.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mobirep-game", flag.ContinueOnError)
	fs.SetOutput(stderr)
	policyName := fs.String("policy", "SW9", "finite-state policy: ST1, ST2, SWk, SWek, T1m, T2m, CacheInv")
	modelName := fs.String("model", "connection", "cost model: connection or message")
	omega := fs.Float64("omega", 0.5, "control/data cost ratio for the message model")
	limit := fs.Float64("limit", 64, "give up (report not-competitive) above this factor")
	tol := fs.Float64("tol", 1e-7, "binary-search tolerance on the ratio")
	verify := fs.Float64("verify", 0, "verify this bound instead of searching for the ratio")
	witness := fs.Bool("witness", false, "also extract and check the adversarial witness cycle")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	factory, err := sim.ParsePolicy(*policyName)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	p, ok := factory().(core.Enumerable)
	if !ok {
		fmt.Fprintf(stderr, "policy %s is not finite-state; the game solver cannot analyze it\n", *policyName)
		return 2
	}
	var model cost.Model
	switch strings.ToLower(*modelName) {
	case "connection", "conn":
		model = cost.NewConnection()
	case "message", "msg":
		model = cost.NewMessage(*omega)
	default:
		fmt.Fprintf(stderr, "unknown cost model %q\n", *modelName)
		return 2
	}

	if *verify > 0 {
		ok, err := analytic.VerifyCompetitive(p, model, *verify)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stdout, "%s is %v-competitive under %s: %v\n", p.Name(), *verify, model.Name(), ok)
		if !ok {
			return 3
		}
		return 0
	}

	ratio, err := analytic.CompetitiveRatio(p, model, *limit, *tol)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if math.IsInf(ratio, 1) {
		fmt.Fprintf(stdout, "%s under %s: NOT competitive (no factor below %g)\n",
			p.Name(), model.Name(), *limit)
		return 0
	}
	fmt.Fprintf(stdout, "%s under %s: exactly %.6f-competitive\n", p.Name(), model.Name(), ratio)

	if *witness {
		cycle, gain, err := analytic.WorstSchedule(p, model, ratio-10**tol-0.01)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stdout, "witness cycle: %q (adversary gains %.4f per request at that factor)\n",
			cycle.String(), gain)
		reps := 4000/len(cycle) + 1
		s := cycle.Repeat(reps)
		q := factory()
		online := 0.0
		for _, op := range s {
			online += model.StepCost(q.Apply(op))
		}
		opt := offline.Cost(s, offline.Ideal())
		if opt > 0 {
			fmt.Fprintf(stdout, "check: %d repetitions force ratio %.4f\n", reps, online/opt)
		}
	}
	return 0
}
