// Command mobirep-bench regenerates the paper's figures and numbered
// results: it runs the experiments of internal/experiments and prints
// their tables, which EXPERIMENTS.md records.
//
// Usage:
//
//	mobirep-bench [-quick] [-seed N] [-csv] [-list] [E01 E05 ...]
//
// With no experiment IDs, every experiment runs in ID order.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"mobirep/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main's testable body.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mobirep-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	quick := fs.Bool("quick", false, "run reduced workloads (order-of-magnitude faster)")
	seed := fs.Uint64("seed", 1994, "base random seed for all measurements")
	csv := fs.Bool("csv", false, "emit CSV instead of aligned tables")
	outDir := fs.String("out", "", "also write one file per experiment into this directory")
	list := fs.Bool("list", false, "list experiments and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Fprintf(stdout, "%s  %-62s  [%s]\n", e.ID, e.Title, e.Artifact)
		}
		return 0
	}

	var selected []experiments.Experiment
	if fs.NArg() == 0 {
		selected = experiments.All()
	} else {
		for _, id := range fs.Args() {
			e, err := experiments.ByID(id)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
			selected = append(selected, e)
		}
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}

	cfg := experiments.Config{Seed: *seed, Quick: *quick}
	for _, e := range selected {
		start := time.Now()
		fmt.Fprintf(stdout, "### %s — %s (%s)\n\n", e.ID, e.Title, e.Artifact)
		var fileBuf strings.Builder
		for _, tbl := range e.Run(cfg) {
			rendered := tbl.ASCII()
			if *csv {
				rendered = tbl.CSV()
			}
			fmt.Fprintln(stdout, rendered)
			fileBuf.WriteString(rendered)
			fileBuf.WriteByte('\n')
		}
		if *outDir != "" {
			ext := ".txt"
			if *csv {
				ext = ".csv"
			}
			path := filepath.Join(*outDir, strings.ToLower(e.ID)+ext)
			if err := os.WriteFile(path, []byte(fileBuf.String()), 0o644); err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
		}
		fmt.Fprintf(stdout, "[%s completed in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	return 0
}
