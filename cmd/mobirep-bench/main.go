// Command mobirep-bench regenerates the paper's figures and numbered
// results: it runs the experiments of internal/experiments and prints
// their tables, which EXPERIMENTS.md records.
//
// Usage:
//
//	mobirep-bench [-quick] [-seed N] [-parallel N] [-csv|-json] [-skip IDs] [-list] [E01 E05 ...]
//
// With no experiment IDs, every experiment runs in ID order. Independent
// experiments run concurrently (-parallel, default GOMAXPROCS) on top of
// the simulator's own grid- and trial-level parallelism; output is always
// emitted in ID order and is byte-identical at any parallelism for the
// same seed. -json emits one machine-readable document with per-experiment
// wall-clock timings for trajectory tracking.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"mobirep/internal/experiments"
	"mobirep/internal/report"
	"mobirep/internal/sim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonTable mirrors report.Table for -json output.
type jsonTable struct {
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

// jsonExperiment is one experiment's -json record.
type jsonExperiment struct {
	ID       string      `json:"id"`
	Title    string      `json:"title"`
	Artifact string      `json:"artifact"`
	Seconds  float64     `json:"seconds"`
	Tables   []jsonTable `json:"tables"`
}

// outcome carries one experiment's results from its worker goroutine.
type outcome struct {
	tables  []*report.Table
	elapsed time.Duration
	err     any
}

// run is main's testable body.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mobirep-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	quick := fs.Bool("quick", false, "run reduced workloads (order-of-magnitude faster)")
	seed := fs.Uint64("seed", 1994, "base random seed for all measurements")
	csv := fs.Bool("csv", false, "emit CSV instead of aligned tables")
	jsonOut := fs.Bool("json", false, "emit one JSON document with tables and wall-clock timings")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0),
		"experiments (and simulator workers) to run concurrently; 1 forces fully sequential execution")
	outDir := fs.String("out", "", "also write one file per experiment into this directory")
	trajDir := fs.String("trajectory-dir", ".",
		"with -json, also write a BENCH_<date>.json trajectory file into this directory (empty disables; see docs/BENCH_SCHEMA.md)")
	skip := fs.String("skip", "",
		"comma-separated experiment IDs to exclude (e.g. -skip E23 for timing-based experiments whose output is not byte-reproducible)")
	list := fs.Bool("list", false, "list experiments and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Fprintf(stdout, "%s  %-62s  [%s]\n", e.ID, e.Title, e.Artifact)
		}
		return 0
	}

	var selected []experiments.Experiment
	if fs.NArg() == 0 {
		selected = experiments.All()
	} else {
		for _, id := range fs.Args() {
			e, err := experiments.ByID(id)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
			selected = append(selected, e)
		}
	}

	if *skip != "" {
		skipped := make(map[string]bool)
		for _, id := range strings.Split(*skip, ",") {
			skipped[strings.TrimSpace(id)] = true
		}
		kept := selected[:0]
		for _, e := range selected {
			if !skipped[e.ID] {
				kept = append(kept, e)
			}
		}
		selected = kept
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}

	if *parallel < 1 {
		*parallel = 1
	}
	// The flag caps both layers: how many experiments run at once and how
	// wide each experiment's grid/trial fan may go. -parallel 1 is the
	// sequential baseline the speedup and determinism claims compare to.
	defer sim.SetMaxWorkers(sim.SetMaxWorkers(*parallel))

	cfg := experiments.Config{Seed: *seed, Quick: *quick}
	results := make([]chan outcome, len(selected))
	sem := make(chan struct{}, *parallel)
	for i := range selected {
		results[i] = make(chan outcome, 1)
		go func(i int, e experiments.Experiment) {
			sem <- struct{}{}
			defer func() { <-sem }()
			start := time.Now()
			var oc outcome
			func() {
				defer func() {
					if r := recover(); r != nil {
						oc.err = r
					}
				}()
				oc.tables = e.Run(cfg)
			}()
			oc.elapsed = time.Since(start)
			results[i] <- oc
		}(i, selected[i])
	}

	// Consume in declaration order so output is deterministic no matter
	// how the workers interleave.
	var doc []jsonExperiment
	for i, e := range selected {
		oc := <-results[i]
		if oc.err != nil {
			fmt.Fprintf(stderr, "%s failed: %v\n", e.ID, oc.err)
			return 1
		}
		if *jsonOut {
			je := jsonExperiment{
				ID: e.ID, Title: e.Title, Artifact: e.Artifact,
				Seconds: oc.elapsed.Seconds(),
			}
			for _, tbl := range oc.tables {
				je.Tables = append(je.Tables, jsonTable{
					Title: tbl.Title, Columns: tbl.Columns, Rows: tbl.Rows, Notes: tbl.Notes,
				})
			}
			doc = append(doc, je)
		} else {
			fmt.Fprintf(stdout, "### %s — %s (%s)\n\n", e.ID, e.Title, e.Artifact)
			for _, tbl := range oc.tables {
				rendered := tbl.ASCII()
				if *csv {
					rendered = tbl.CSV()
				}
				fmt.Fprintln(stdout, rendered)
			}
			fmt.Fprintf(stdout, "[%s completed in %v]\n\n", e.ID, oc.elapsed.Round(time.Millisecond))
		}
		if *outDir != "" {
			var fileBuf strings.Builder
			for _, tbl := range oc.tables {
				if *csv {
					fileBuf.WriteString(tbl.CSV())
				} else {
					fileBuf.WriteString(tbl.ASCII())
				}
				fileBuf.WriteByte('\n')
			}
			ext := ".txt"
			if *csv {
				ext = ".csv"
			}
			path := filepath.Join(*outDir, strings.ToLower(e.ID)+ext)
			if err := os.WriteFile(path, []byte(fileBuf.String()), 0o644); err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if *trajDir != "" {
			path, err := writeTrajectory(*trajDir, trajectoryDoc{
				Schema:      trajectorySchema,
				Seed:        *seed,
				Quick:       *quick,
				Parallel:    *parallel,
				GoVersion:   runtime.Version(),
				Experiments: doc,
			})
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
			fmt.Fprintf(stderr, "trajectory written to %s\n", path)
		}
	}
	return 0
}

// trajectorySchema names the trajectory file layout; bump it when the
// shape changes. docs/BENCH_SCHEMA.md documents the current version.
const trajectorySchema = "mobirep-bench-trajectory/v1"

// trajectoryDoc is the BENCH_<date>.json layout: the run's provenance
// plus the same per-experiment records -json prints, so successive dated
// files form a performance trajectory that diffs cleanly.
type trajectoryDoc struct {
	Schema       string           `json:"schema"`
	Date         string           `json:"date"`
	GeneratedAt  string           `json:"generated_at"`
	Seed         uint64           `json:"seed"`
	Quick        bool             `json:"quick"`
	Parallel     int              `json:"parallel"`
	GoVersion    string           `json:"go_version"`
	TotalSeconds float64          `json:"total_seconds"`
	Experiments  []jsonExperiment `json:"experiments"`
}

// writeTrajectory stamps the document with the current date and writes it
// as BENCH_<YYYY-MM-DD>.json under dir, returning the path.
func writeTrajectory(dir string, td trajectoryDoc) (string, error) {
	now := time.Now()
	td.Date = now.Format("2006-01-02")
	td.GeneratedAt = now.Format(time.RFC3339)
	for _, e := range td.Experiments {
		td.TotalSeconds += e.Seconds
	}
	body, err := json.MarshalIndent(td, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, "BENCH_"+td.Date+".json")
	return path, os.WriteFile(path, append(body, '\n'), 0o644)
}
