package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func runCapture(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code := run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestList(t *testing.T) {
	code, out, _ := runCapture(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, id := range []string{"E01", "E05", "E13", "E17"} {
		if !strings.Contains(out, id) {
			t.Fatalf("list missing %s:\n%s", id, out)
		}
	}
}

func TestSingleExperimentQuick(t *testing.T) {
	code, out, _ := runCapture(t, "-quick", "-seed", "3", "E10")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "### E10") || !strings.Contains(out, "Section 9 worked numbers") {
		t.Fatalf("output: %q", out)
	}
	if !strings.Contains(out, "completed in") {
		t.Fatal("missing timing line")
	}
}

func TestCSVOutput(t *testing.T) {
	code, out, _ := runCapture(t, "-quick", "-csv", "E02")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "omega,") {
		t.Fatalf("csv header missing:\n%s", out)
	}
	if strings.Contains(out, "== Figure") {
		t.Fatal("ASCII table leaked into CSV mode")
	}
}

// timingLine matches the wall-clock footer, the only non-deterministic
// part of the text output.
var timingLine = regexp.MustCompile(`\[E\d+ completed in [^\]]+\]`)

// TestParallelOutputMatchesSequential: the same seed must produce
// byte-identical tables whether experiments run one at a time or eight
// abreast; only the timing footers may differ.
func TestParallelOutputMatchesSequential(t *testing.T) {
	code, seq, _ := runCapture(t, "-quick", "-seed", "9", "-parallel", "1", "E02", "E03", "E09")
	if code != 0 {
		t.Fatalf("sequential exit %d", code)
	}
	code, par, _ := runCapture(t, "-quick", "-seed", "9", "-parallel", "8", "E02", "E03", "E09")
	if code != 0 {
		t.Fatalf("parallel exit %d", code)
	}
	normalize := func(s string) string { return timingLine.ReplaceAllString(s, "[timing]") }
	if normalize(seq) != normalize(par) {
		t.Fatalf("parallel output differs from sequential:\n--- -parallel 1 ---\n%s\n--- -parallel 8 ---\n%s", seq, par)
	}
}

// TestJSONOutput checks the -json document: valid JSON, one record per
// experiment in ID order, with timings and table payloads.
func TestJSONOutput(t *testing.T) {
	code, out, errOut := runCapture(t, "-quick", "-json", "-trajectory-dir", "", "-seed", "4", "E10", "E02")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	var doc []struct {
		ID       string  `json:"id"`
		Title    string  `json:"title"`
		Artifact string  `json:"artifact"`
		Seconds  float64 `json:"seconds"`
		Tables   []struct {
			Title   string     `json:"title"`
			Columns []string   `json:"columns"`
			Rows    [][]string `json:"rows"`
		} `json:"tables"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if len(doc) != 2 || doc[0].ID != "E10" || doc[1].ID != "E02" {
		t.Fatalf("unexpected records: %+v", doc)
	}
	for _, e := range doc {
		if e.Seconds <= 0 || e.Title == "" || e.Artifact == "" || len(e.Tables) == 0 {
			t.Fatalf("incomplete record: %+v", e)
		}
		for _, tbl := range e.Tables {
			if tbl.Title == "" || len(tbl.Columns) == 0 || len(tbl.Rows) == 0 {
				t.Fatalf("incomplete table in %s: %+v", e.ID, tbl)
			}
		}
	}
	if strings.Contains(out, "### ") {
		t.Fatal("ASCII header leaked into JSON mode")
	}
}

// TestTrajectoryFile checks the BENCH_<date>.json side channel of -json:
// written into -trajectory-dir, schema-stamped, dated, and carrying the
// same experiment records as stdout.
func TestTrajectoryFile(t *testing.T) {
	dir := t.TempDir()
	code, _, errOut := runCapture(t, "-quick", "-json", "-trajectory-dir", dir, "-seed", "4", "E10")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("trajectory files %v (err %v), want exactly one", matches, err)
	}
	if !strings.Contains(errOut, "trajectory written to") {
		t.Fatalf("missing trajectory notice: %q", errOut)
	}
	data, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	var td trajectoryDoc
	if err := json.Unmarshal(data, &td); err != nil {
		t.Fatalf("invalid trajectory JSON: %v", err)
	}
	if td.Schema != trajectorySchema {
		t.Fatalf("schema %q, want %q", td.Schema, trajectorySchema)
	}
	wantName := "BENCH_" + td.Date + ".json"
	if filepath.Base(matches[0]) != wantName {
		t.Fatalf("file %s does not match date stamp %s", matches[0], wantName)
	}
	if td.Seed != 4 || !td.Quick || td.GoVersion == "" || td.GeneratedAt == "" {
		t.Fatalf("incomplete provenance: %+v", td)
	}
	if len(td.Experiments) != 1 || td.Experiments[0].ID != "E10" ||
		td.Experiments[0].Seconds <= 0 || len(td.Experiments[0].Tables) == 0 {
		t.Fatalf("unexpected experiment records: %+v", td.Experiments)
	}
	if td.TotalSeconds < td.Experiments[0].Seconds {
		t.Fatalf("total %v < experiment %v", td.TotalSeconds, td.Experiments[0].Seconds)
	}
}

func TestUnknownExperiment(t *testing.T) {
	code, _, errOut := runCapture(t, "E99")
	if code != 2 || !strings.Contains(errOut, "unknown experiment") {
		t.Fatalf("code=%d err=%q", code, errOut)
	}
}

func TestBadFlag(t *testing.T) {
	if code, _, _ := runCapture(t, "-nope"); code != 2 {
		t.Fatal("bad flag accepted")
	}
}

func TestOutDirWritesFiles(t *testing.T) {
	dir := t.TempDir()
	code, _, errOut := runCapture(t, "-quick", "-out", dir, "E10")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	data, err := os.ReadFile(filepath.Join(dir, "e10.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Section 9 worked numbers") {
		t.Fatalf("file content: %q", data)
	}
	// CSV variant.
	code, _, _ = runCapture(t, "-quick", "-csv", "-out", dir, "E10")
	if code != 0 {
		t.Fatalf("csv exit %d", code)
	}
	if _, err := os.Stat(filepath.Join(dir, "e10.csv")); err != nil {
		t.Fatal(err)
	}
}
