package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCapture(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code := run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestList(t *testing.T) {
	code, out, _ := runCapture(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, id := range []string{"E01", "E05", "E13", "E17"} {
		if !strings.Contains(out, id) {
			t.Fatalf("list missing %s:\n%s", id, out)
		}
	}
}

func TestSingleExperimentQuick(t *testing.T) {
	code, out, _ := runCapture(t, "-quick", "-seed", "3", "E10")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "### E10") || !strings.Contains(out, "Section 9 worked numbers") {
		t.Fatalf("output: %q", out)
	}
	if !strings.Contains(out, "completed in") {
		t.Fatal("missing timing line")
	}
}

func TestCSVOutput(t *testing.T) {
	code, out, _ := runCapture(t, "-quick", "-csv", "E02")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "omega,") {
		t.Fatalf("csv header missing:\n%s", out)
	}
	if strings.Contains(out, "== Figure") {
		t.Fatal("ASCII table leaked into CSV mode")
	}
}

func TestUnknownExperiment(t *testing.T) {
	code, _, errOut := runCapture(t, "E99")
	if code != 2 || !strings.Contains(errOut, "unknown experiment") {
		t.Fatalf("code=%d err=%q", code, errOut)
	}
}

func TestBadFlag(t *testing.T) {
	if code, _, _ := runCapture(t, "-nope"); code != 2 {
		t.Fatal("bad flag accepted")
	}
}

func TestOutDirWritesFiles(t *testing.T) {
	dir := t.TempDir()
	code, _, errOut := runCapture(t, "-quick", "-out", dir, "E10")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	data, err := os.ReadFile(filepath.Join(dir, "e10.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Section 9 worked numbers") {
		t.Fatalf("file content: %q", data)
	}
	// CSV variant.
	code, _, _ = runCapture(t, "-quick", "-csv", "-out", dir, "E10")
	if code != 0 {
		t.Fatalf("csv exit %d", code)
	}
	if _, err := os.Stat(filepath.Join(dir, "e10.csv")); err != nil {
		t.Fatal(err)
	}
}
