// mobirep-load drives a large fleet of chaos-wrapped client sessions
// against an in-process sharded replica server and reports attach
// throughput (sessions/sec) and read-latency percentiles. It is the
// load half of the scale story: conformance proves the sharded core
// behaves identically, this proves it carries six-figure session counts.
//
//	mobirep-load -sessions 100000 -shards 0 -duration 5s
//	mobirep-load -sessions 5000 -duration 30s -floor-sessions-per-sec 500
//	mobirep-load -overload -capacity 3000 -factor 2 -duration 30s \
//	    -mem-soft-limit 67108864 -ceil-p99 100ms -max-goroutine-growth 8
//
// With -floor-sessions-per-sec the exit status is 1 when the attach rate
// lands under the floor — the ci.sh smoke gate. With -overload the fleet
// is Factor x the admission cap and a slice of admitted readers wedges:
// the run fails when any refused attach goes unanswered by a Busy frame,
// and the -ceil-p99 / -max-goroutine-growth gates bound healthy-fleet
// latency and teardown leaks.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"mobirep/internal/load"
	"mobirep/internal/replica"
	"mobirep/internal/transport"
	"mobirep/internal/tree"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mobirep-load", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		sessions = fs.Int("sessions", 100000, "concurrent client sessions to attach and drive")
		shards   = fs.Int("shards", 0, "server shard count (power of two, 0 = automatic)")
		mode     = fs.String("mode", "SW3", "allocation mode: SWk, ST1 or ST2")
		keys     = fs.Int("keys", 0, "shared key-pool size (0 = sessions/8)")
		duration = fs.Duration("duration", 5*time.Second, "steady-state drive phase length")
		workers  = fs.Int("workers", 0, "driver goroutines (0 = 16*GOMAXPROCS)")
		chaos    = fs.String("chaos", "drop=0.01,dup=0.01",
			"fault spec for every session's links (key=value pairs: drop, dup, reorder, delay, maxdelay, crash, part, partlen); empty disables faults")
		seed    = fs.Uint64("seed", 1994, "base seed for chaos and drive RNGs")
		timeout = fs.Duration("timeout", 25*time.Millisecond, "per-read timeout (only chaos-dropped frames wait)")
		writers = fs.Int("writers", 2, "background server-write goroutines")
		jsonOut = fs.Bool("json", false, "emit the result as JSON instead of text")
		floor   = fs.Float64("floor-sessions-per-sec", 0,
			"exit nonzero when the attach rate falls below this (0 disables; skipped under 100 sessions)")

		treeMode     = fs.Bool("tree", false, "run the fleet over a binary support-station tree instead of one flat server")
		stations     = fs.Int("stations", 7, "tree: binary-tree station count (heap order, station 0 the root)")
		handoffEvery = fs.Int("handoff-every", 0,
			"tree: each worker hands one of its MCs to a random other leaf every N reads (0 = no motion)")
		placementSpec = fs.String("placement", "none", "tree: per-relay placement policy (none, SWk, T1:m or T2:m)")

		overload    = fs.Bool("overload", false, "run the overload scenario instead of the plain fleet drive")
		capacity    = fs.Int("capacity", 5000, "overload: server admission cap (MaxSessions)")
		factor      = fs.Float64("factor", 2, "overload: attempted fleet is factor*capacity")
		stalledFrac = fs.Float64("stalled-frac", 0.1,
			"overload: fraction of admitted clients whose reader wedges after attach (negative = none)")
		stallCap = fs.Int("stall-cap", 256<<10,
			"overload: outbox byte bound toward each stalled client before its link is killed")
		memSoftLimit = fs.Int64("mem-soft-limit", 0,
			"overload: soft watermark on accounted server bytes; idle-longest sessions are shed while over it (0 disables)")
		shedEvery  = fs.Duration("shed-every", 50*time.Millisecond, "overload: shed ticker period")
		retryAfter = fs.Duration("retry-after", 50*time.Millisecond, "overload: retry-after hint in Busy refusals")
		ceilP99    = fs.Duration("ceil-p99", 0,
			"overload: exit nonzero when healthy-fleet read p99 exceeds this (0 disables; skipped under 100 samples)")
		maxGoroutineGrowth = fs.Int("max-goroutine-growth", 0,
			"overload: exit nonzero when more goroutines than this survive teardown (0 disables)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	m, err := parseMode(*mode)
	if err != nil {
		fmt.Fprintln(stderr, "mobirep-load:", err)
		return 2
	}
	ccfg, err := transport.ParseChaosSpec(*chaos)
	if err != nil {
		fmt.Fprintln(stderr, "mobirep-load:", err)
		return 2
	}

	if *treeMode {
		// The tree drive brings no chaos: conformance owns the fault story;
		// this measures what the composition carries.
		place, err := tree.ParsePolicy(*placementSpec)
		if err != nil {
			fmt.Fprintln(stderr, "mobirep-load:", err)
			return 2
		}
		res, err := load.RunTree(load.TreeConfig{
			Stations:     *stations,
			Sessions:     *sessions,
			Shards:       *shards,
			Mode:         m,
			Placement:    place,
			Keys:         *keys,
			Duration:     *duration,
			Workers:      *workers,
			Seed:         *seed,
			Timeout:      *timeout,
			Writers:      *writers,
			HandoffEvery: *handoffEvery,
		})
		if err != nil {
			fmt.Fprintln(stderr, "mobirep-load:", err)
			return 1
		}
		if *jsonOut {
			enc := json.NewEncoder(stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(res); err != nil {
				fmt.Fprintln(stderr, "mobirep-load:", err)
				return 1
			}
		} else {
			fmt.Fprintf(stdout, "mobirep-load tree: %d MCs over %d stations / %d leaves (mode %v, placement %v, %d keys, %d workers)\n",
				res.Sessions, res.Stations, res.Leaves, m, place, res.Keys, res.Workers)
			fmt.Fprintf(stdout, "  attach: %.2fs  %.0f sessions/sec\n", res.AttachSeconds, res.SessionsPerSec)
			fmt.Fprintf(stdout, "  drive:  %.2fs  %d reads (%.0f ops/sec), %d errors, %d root writes\n",
				res.DriveSeconds, res.Ops, res.OpsPerSec, res.Errors, res.Writes)
			fmt.Fprintf(stdout, "  read latency: p50=%v p90=%v p99=%v max=%v\n", res.P50, res.P90, res.P99, res.Max)
			fmt.Fprintf(stdout, "  handoffs: %d (%d cold)  latency p50=%v p99=%v max=%v\n",
				res.Handoffs, res.ColdHandoffs, res.HandoffP50, res.HandoffP99, res.HandoffMax)
		}
		if *floor > 0 {
			if res.Sessions < 100 {
				fmt.Fprintf(stderr, "mobirep-load: skipping -floor-sessions-per-sec gate: only %d sessions (rates under 100 sessions are noise)\n",
					res.Sessions)
			} else if res.SessionsPerSec < *floor {
				fmt.Fprintf(stderr, "mobirep-load: attach rate %.0f sessions/sec is under the floor %.0f\n",
					res.SessionsPerSec, *floor)
				return 1
			}
		}
		if res.ColdHandoffs > 0 {
			fmt.Fprintf(stderr, "mobirep-load: %d handoffs arrived cold with no root restart in the run\n", res.ColdHandoffs)
			return 1
		}
		return 0
	}

	if *overload {
		// The overload scenario brings its own faults (stalled readers), so
		// the -chaos spec does not apply here.
		res, err := load.RunOverload(load.OverloadConfig{
			Capacity:     *capacity,
			Factor:       *factor,
			StalledFrac:  *stalledFrac,
			StallCap:     *stallCap,
			Mode:         m,
			Shards:       *shards,
			Keys:         *keys,
			Duration:     *duration,
			Workers:      *workers,
			Writers:      *writers,
			Timeout:      *timeout,
			Seed:         *seed,
			MemSoftLimit: *memSoftLimit,
			ShedEvery:    *shedEvery,
			RetryAfter:   *retryAfter,
		})
		if err != nil {
			fmt.Fprintln(stderr, "mobirep-load:", err)
			return 1
		}
		if *jsonOut {
			enc := json.NewEncoder(stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(res); err != nil {
				fmt.Fprintln(stderr, "mobirep-load:", err)
				return 1
			}
		} else {
			fmt.Fprintf(stdout, "mobirep-load overload: capacity %d, %d attempted (factor %.2f, mode %v)\n",
				res.Capacity, res.Attempted, *factor, m)
			fmt.Fprintf(stdout, "  admission: %d admitted, %d rejected, %d Busy frames delivered\n",
				res.Admitted, res.Rejected, res.BusyFrames)
			fmt.Fprintf(stdout, "  faults: %d stalled readers, %d sessions shed to the memory budget\n",
				res.Stalled, res.Shed)
			fmt.Fprintf(stdout, "  drive:  %.2fs  %d reads (%.0f ops/sec), %d errors over the healthy fleet\n",
				res.DriveSeconds, res.Ops, res.OpsPerSec, res.Errors)
			fmt.Fprintf(stdout, "  read latency: p50=%v p90=%v p99=%v max=%v (%d samples)\n",
				res.P50, res.P90, res.P99, res.Max, res.Samples)
			fmt.Fprintf(stdout, "  memory: heap peak %d bytes, accounted peak %d bytes\n",
				res.HeapPeakBytes, res.MemAccountPeak)
			fmt.Fprintf(stdout, "  goroutines: %d before, %d after teardown\n",
				res.GoroutinesBefore, res.GoroutinesAfter)
		}
		code := 0
		if res.BusyFrames != res.Rejected {
			fmt.Fprintf(stderr, "mobirep-load: %d refused attaches but %d Busy frames received: a client was dropped without being told\n",
				res.Rejected, res.BusyFrames)
			code = 1
		}
		if *ceilP99 > 0 {
			if res.Samples < 100 {
				fmt.Fprintf(stderr, "mobirep-load: skipping -ceil-p99 gate: only %d samples (p99 of fewer than 100 is just the maximum)\n",
					res.Samples)
			} else if res.P99 > *ceilP99 {
				fmt.Fprintf(stderr, "mobirep-load: healthy-fleet p99 %v is over the ceiling %v\n", res.P99, *ceilP99)
				code = 1
			}
		}
		if *maxGoroutineGrowth > 0 && res.GoroutinesAfter > res.GoroutinesBefore+*maxGoroutineGrowth {
			fmt.Fprintf(stderr, "mobirep-load: %d goroutines before, %d after teardown (allowed growth %d): the run leaked\n",
				res.GoroutinesBefore, res.GoroutinesAfter, *maxGoroutineGrowth)
			code = 1
		}
		return code
	}

	res, err := load.Run(load.Config{
		Sessions: *sessions,
		Shards:   *shards,
		Mode:     m,
		Keys:     *keys,
		Duration: *duration,
		Workers:  *workers,
		Chaos:    ccfg,
		Seed:     *seed,
		Timeout:  *timeout,
		Writers:  *writers,
	})
	if err != nil {
		fmt.Fprintln(stderr, "mobirep-load:", err)
		return 1
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(stderr, "mobirep-load:", err)
			return 1
		}
	} else {
		fmt.Fprintf(stdout, "mobirep-load: %d sessions over %d shards (mode %v, %d keys, %d workers)\n",
			res.Sessions, res.Shards, m, res.Keys, res.Workers)
		fmt.Fprintf(stdout, "  attach: %.2fs  %.0f sessions/sec\n", res.AttachSeconds, res.SessionsPerSec)
		fmt.Fprintf(stdout, "  drive:  %.2fs  %d reads (%.0f ops/sec), %d errors, %d background writes\n",
			res.DriveSeconds, res.Ops, res.OpsPerSec, res.Errors, res.Writes)
		fmt.Fprintf(stdout, "  read latency: p50=%v p90=%v p99=%v max=%v\n", res.P50, res.P90, res.P99, res.Max)
		fmt.Fprintf(stdout, "  shard occupancy: min=%d max=%d\n", res.ShardMin, res.ShardMax)
	}
	if *floor > 0 {
		// A handful of attaches measures scheduler noise, not attach
		// throughput; refuse to gate on it rather than flake.
		if res.Sessions < 100 {
			fmt.Fprintf(stderr, "mobirep-load: skipping -floor-sessions-per-sec gate: only %d sessions (rates under 100 sessions are noise)\n",
				res.Sessions)
		} else if res.SessionsPerSec < *floor {
			fmt.Fprintf(stderr, "mobirep-load: attach rate %.0f sessions/sec is under the floor %.0f\n",
				res.SessionsPerSec, *floor)
			return 1
		}
	}
	return 0
}

func parseMode(name string) (replica.Mode, error) {
	switch name {
	case "ST1":
		return replica.Static1(), nil
	case "ST2":
		return replica.Static2(), nil
	}
	var k int
	if n, err := fmt.Sscanf(name, "SW%d", &k); err == nil && n == 1 && fmt.Sprintf("SW%d", k) == name {
		m := replica.SW(k)
		if err := m.Validate(); err != nil {
			return replica.Mode{}, err
		}
		return m, nil
	}
	return replica.Mode{}, fmt.Errorf("unknown mode %q (want ST1, ST2 or SWk)", name)
}
