// mobirep-load drives a large fleet of chaos-wrapped client sessions
// against an in-process sharded replica server and reports attach
// throughput (sessions/sec) and read-latency percentiles. It is the
// load half of the scale story: conformance proves the sharded core
// behaves identically, this proves it carries six-figure session counts.
//
//	mobirep-load -sessions 100000 -shards 0 -duration 5s
//	mobirep-load -sessions 5000 -duration 30s -floor-sessions-per-sec 500
//
// With -floor-sessions-per-sec the exit status is 1 when the attach rate
// lands under the floor — the ci.sh smoke gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"mobirep/internal/load"
	"mobirep/internal/replica"
	"mobirep/internal/transport"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mobirep-load", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		sessions = fs.Int("sessions", 100000, "concurrent client sessions to attach and drive")
		shards   = fs.Int("shards", 0, "server shard count (power of two, 0 = automatic)")
		mode     = fs.String("mode", "SW3", "allocation mode: SWk, ST1 or ST2")
		keys     = fs.Int("keys", 0, "shared key-pool size (0 = sessions/8)")
		duration = fs.Duration("duration", 5*time.Second, "steady-state drive phase length")
		workers  = fs.Int("workers", 0, "driver goroutines (0 = 16*GOMAXPROCS)")
		chaos    = fs.String("chaos", "drop=0.01,dup=0.01",
			"fault spec for every session's links (key=value pairs: drop, dup, reorder, delay, maxdelay, crash, part, partlen); empty disables faults")
		seed    = fs.Uint64("seed", 1994, "base seed for chaos and drive RNGs")
		timeout = fs.Duration("timeout", 25*time.Millisecond, "per-read timeout (only chaos-dropped frames wait)")
		writers = fs.Int("writers", 2, "background server-write goroutines")
		jsonOut = fs.Bool("json", false, "emit the result as JSON instead of text")
		floor   = fs.Float64("floor-sessions-per-sec", 0,
			"exit nonzero when the attach rate falls below this (0 disables)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	m, err := parseMode(*mode)
	if err != nil {
		fmt.Fprintln(stderr, "mobirep-load:", err)
		return 2
	}
	ccfg, err := transport.ParseChaosSpec(*chaos)
	if err != nil {
		fmt.Fprintln(stderr, "mobirep-load:", err)
		return 2
	}

	res, err := load.Run(load.Config{
		Sessions: *sessions,
		Shards:   *shards,
		Mode:     m,
		Keys:     *keys,
		Duration: *duration,
		Workers:  *workers,
		Chaos:    ccfg,
		Seed:     *seed,
		Timeout:  *timeout,
		Writers:  *writers,
	})
	if err != nil {
		fmt.Fprintln(stderr, "mobirep-load:", err)
		return 1
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(stderr, "mobirep-load:", err)
			return 1
		}
	} else {
		fmt.Fprintf(stdout, "mobirep-load: %d sessions over %d shards (mode %v, %d keys, %d workers)\n",
			res.Sessions, res.Shards, m, res.Keys, res.Workers)
		fmt.Fprintf(stdout, "  attach: %.2fs  %.0f sessions/sec\n", res.AttachSeconds, res.SessionsPerSec)
		fmt.Fprintf(stdout, "  drive:  %.2fs  %d reads (%.0f ops/sec), %d errors, %d background writes\n",
			res.DriveSeconds, res.Ops, res.OpsPerSec, res.Errors, res.Writes)
		fmt.Fprintf(stdout, "  read latency: p50=%v p90=%v p99=%v max=%v\n", res.P50, res.P90, res.P99, res.Max)
		fmt.Fprintf(stdout, "  shard occupancy: min=%d max=%d\n", res.ShardMin, res.ShardMax)
	}
	if *floor > 0 && res.SessionsPerSec < *floor {
		fmt.Fprintf(stderr, "mobirep-load: attach rate %.0f sessions/sec is under the floor %.0f\n",
			res.SessionsPerSec, *floor)
		return 1
	}
	return 0
}

func parseMode(name string) (replica.Mode, error) {
	switch name {
	case "ST1":
		return replica.Static1(), nil
	case "ST2":
		return replica.Static2(), nil
	}
	var k int
	if n, err := fmt.Sscanf(name, "SW%d", &k); err == nil && n == 1 && fmt.Sprintf("SW%d", k) == name {
		m := replica.SW(k)
		if err := m.Validate(); err != nil {
			return replica.Mode{}, err
		}
		return m, nil
	}
	return replica.Mode{}, fmt.Errorf("unknown mode %q (want ST1, ST2 or SWk)", name)
}
