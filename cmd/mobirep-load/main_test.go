package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRunSmokeText(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-sessions", "300", "-shards", "2", "-duration", "150ms"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"300 sessions over 2 shards", "sessions/sec", "p99="} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunJSONAndFloor(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-sessions", "200", "-duration", "100ms", "-json"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	var res map[string]any
	if err := json.Unmarshal(out.Bytes(), &res); err != nil {
		t.Fatalf("non-JSON output: %v\n%s", err, out.String())
	}
	if res["Sessions"] != float64(200) {
		t.Errorf("JSON Sessions = %v, want 200", res["Sessions"])
	}
	// An impossible floor must fail the run.
	out.Reset()
	errb.Reset()
	code = run([]string{"-sessions", "100", "-duration", "50ms", "-floor-sessions-per-sec", "1e12"}, &out, &errb)
	if code == 0 {
		t.Error("impossible sessions/sec floor did not fail the run")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-mode", "bogus"}, &out, &errb); code != 2 {
		t.Errorf("bad mode: exit %d, want 2", code)
	}
	if code := run([]string{"-chaos", "drop=oops"}, &out, &errb); code != 2 {
		t.Errorf("bad chaos spec: exit %d, want 2", code)
	}
	if code := run([]string{"-sessions", "0", "-chaos", ""}, &out, &errb); code != 1 {
		t.Errorf("zero sessions: exit %d, want 1", code)
	}
}
