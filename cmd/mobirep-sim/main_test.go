package main

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func runCapture(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code := run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestExpRun(t *testing.T) {
	code, out, errOut := runCapture(t,
		"-policy", "SW5", "-theta", "0.3", "-model", "connection",
		"-ops", "5000", "-trials", "2", "-seed", "9")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut)
	}
	if !strings.Contains(out, "policy=SW5") || !strings.Contains(out, "measure=EXP") {
		t.Fatalf("output: %q", out)
	}
	if !strings.Contains(out, "theory:") {
		t.Fatalf("missing theory line: %q", out)
	}
}

func TestAvgRun(t *testing.T) {
	code, out, _ := runCapture(t,
		"-policy", "SW1", "-model", "message", "-omega", "0.5", "-avg",
		"-periods", "20", "-ops-per-period", "100", "-trials", "2")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "measure=AVG") || !strings.Contains(out, "theory:   0.333333") {
		t.Fatalf("output: %q", out)
	}
}

func TestBadInputs(t *testing.T) {
	if code, _, errOut := runCapture(t, "-policy", "NOPE"); code != 2 || errOut == "" {
		t.Fatalf("bad policy: code=%d", code)
	}
	if code, _, _ := runCapture(t, "-model", "carrier-pigeon"); code != 2 {
		t.Fatal("bad model accepted")
	}
	if code, _, _ := runCapture(t, "-bogusflag"); code != 2 {
		t.Fatal("bad flag accepted")
	}
}

func TestTheoryExp(t *testing.T) {
	cases := []struct {
		policy, model string
		theta, omega  float64
		want          float64
		ok            bool
	}{
		{"ST1", "connection", 0.3, 0, 0.7, true},
		{"ST1", "message", 0.3, 0.5, 1.05, true},
		{"ST2", "connection", 0.3, 0, 0.3, true},
		{"ST2", "message", 0.3, 0.5, 0.3, true},
		{"SW1", "message", 0.5, 0.5, 0.5, true},
		{"SW1", "connection", 0.5, 0, 0.5, true},
		{"T13", "connection", 0.5, 0, 0.5, true},
		{"T1(3)", "message", 0.5, 0.5, 0, false}, // no closed form
		{"T23", "connection", 0.5, 0, 0.5, true},
		{"T2(3)", "message", 0.5, 0.5, 0, false},
		{"EWMA(0.5)", "connection", 0.5, 0, 0, false},
	}
	for _, c := range cases {
		got, ok := theoryExp(c.policy, c.model, c.theta, c.omega)
		if ok != c.ok {
			t.Fatalf("%s/%s: ok=%v want %v", c.policy, c.model, ok, c.ok)
		}
		if ok && math.Abs(got-c.want) > 1e-9 {
			t.Fatalf("%s/%s: got %v want %v", c.policy, c.model, got, c.want)
		}
	}
}

func TestTheoryAvg(t *testing.T) {
	if got, ok := theoryAvg("ST1", "message", 0.5); !ok || got != 0.75 {
		t.Fatalf("ST1 msg avg: %v %v", got, ok)
	}
	if got, ok := theoryAvg("ST1", "connection", 0); !ok || got != 0.5 {
		t.Fatalf("ST1 conn avg: %v %v", got, ok)
	}
	if got, ok := theoryAvg("ST2", "message", 0.5); !ok || got != 0.5 {
		t.Fatalf("ST2 msg avg: %v %v", got, ok)
	}
	if got, ok := theoryAvg("ST2", "connection", 0); !ok || got != 0.5 {
		t.Fatalf("ST2 conn avg: %v %v", got, ok)
	}
	if got, ok := theoryAvg("SW9", "connection", 0); !ok || math.Abs(got-(0.25+1.0/44)) > 1e-12 {
		t.Fatalf("SW9 conn avg: %v %v", got, ok)
	}
	if got, ok := theoryAvg("SW9", "message", 0.5); !ok || got <= 0.25 {
		t.Fatalf("SW9 msg avg: %v %v", got, ok)
	}
	if _, ok := theoryAvg("T13", "connection", 0); ok {
		t.Fatal("T1 AVG should have no exported closed form")
	}
}
