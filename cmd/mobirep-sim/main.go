// Command mobirep-sim runs ad-hoc allocation simulations: one policy, one
// cost model, one workload, with theory printed beside the measurement
// when a closed form exists.
//
// Examples:
//
//	mobirep-sim -policy SW9 -theta 0.3 -model connection -ops 1000000
//	mobirep-sim -policy SW1 -model message -omega 0.8 -avg
//	mobirep-sim -policy T1(7) -theta 0.8 -trials 16
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"mobirep/internal/analytic"
	"mobirep/internal/cost"
	"mobirep/internal/sim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main's testable body.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mobirep-sim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	policyName := fs.String("policy", "SW9", "policy: ST1, ST2, SWk, T1m, T2m")
	theta := fs.Float64("theta", 0.5, "write probability (fixed-theta mode)")
	modelName := fs.String("model", "connection", "cost model: connection or message")
	omega := fs.Float64("omega", 0.5, "control/data cost ratio for the message model")
	ops := fs.Int("ops", 200000, "priced requests per trial")
	warmup := fs.Int("warmup", 1000, "unpriced leading requests per trial")
	trials := fs.Int("trials", 8, "independent trials")
	seed := fs.Uint64("seed", 1, "random seed")
	avg := fs.Bool("avg", false, "measure AVG (drifting theta) instead of EXP (fixed theta)")
	periods := fs.Int("periods", 400, "periods for -avg")
	opsPerPeriod := fs.Int("ops-per-period", 500, "requests per period for -avg")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	factory, err := sim.ParsePolicy(*policyName)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	var model cost.Model
	switch strings.ToLower(*modelName) {
	case "connection", "conn":
		model = cost.NewConnection()
	case "message", "msg":
		model = cost.NewMessage(*omega)
	default:
		fmt.Fprintf(stderr, "unknown cost model %q (want connection or message)\n", *modelName)
		return 2
	}

	if *avg {
		sum := sim.EstimateAverage(factory, model, sim.AverageOpts{
			Periods: *periods, OpsPerPeriod: *opsPerPeriod, Trials: *trials, Seed: *seed,
		})
		fmt.Fprintf(stdout, "policy=%s model=%s measure=AVG\n", factory().Name(), model.Name())
		fmt.Fprintf(stdout, "measured: %s\n", sum.String())
		if theory, ok := theoryAvg(*policyName, *modelName, *omega); ok {
			fmt.Fprintf(stdout, "theory:   %.6f (paper closed form)\n", theory)
		}
		return 0
	}

	sum := sim.EstimateExpected(factory, model, sim.ExpectedOpts{
		Theta: *theta, Ops: *ops, Warmup: *warmup, Trials: *trials, Seed: *seed,
	})
	fmt.Fprintf(stdout, "policy=%s model=%s theta=%.3f measure=EXP\n", factory().Name(), model.Name(), *theta)
	fmt.Fprintf(stdout, "measured: %s\n", sum.String())
	if theory, ok := theoryExp(*policyName, *modelName, *theta, *omega); ok {
		fmt.Fprintf(stdout, "theory:   %.6f (paper closed form)\n", theory)
	}
	return 0
}

// theoryExp returns the closed-form EXP when the paper gives one.
func theoryExp(policy, model string, theta, omega float64) (float64, bool) {
	msg := strings.HasPrefix(strings.ToLower(model), "m")
	var k, m int
	switch {
	case policy == "ST1":
		if msg {
			return analytic.ExpST1Msg(theta, omega), true
		}
		return analytic.ExpST1Conn(theta), true
	case policy == "ST2":
		if msg {
			return analytic.ExpST2Msg(theta), true
		}
		return analytic.ExpST2Conn(theta), true
	case scan(policy, "SW%d", &k):
		if msg {
			return analytic.ExpSWMsg(k, theta, omega), true
		}
		return analytic.ExpSWConn(k, theta), true
	case scan(policy, "T1(%d)", &m) || scan(policy, "T1%d", &m):
		if msg {
			return 0, false // no closed form in the paper; use the oracle via the library
		}
		return analytic.ExpT1Conn(m, theta), true
	case scan(policy, "T2(%d)", &m) || scan(policy, "T2%d", &m):
		if msg {
			return 0, false
		}
		return analytic.ExpT2Conn(m, theta), true
	}
	return 0, false
}

// theoryAvg returns the closed-form AVG when the paper gives one.
func theoryAvg(policy, model string, omega float64) (float64, bool) {
	msg := strings.HasPrefix(strings.ToLower(model), "m")
	var k int
	switch {
	case policy == "ST1":
		if msg {
			return analytic.AvgST1Msg(omega), true
		}
		return analytic.AvgST1Conn, true
	case policy == "ST2":
		if msg {
			return analytic.AvgST2Msg, true
		}
		return analytic.AvgST2Conn, true
	case scan(policy, "SW%d", &k):
		if msg {
			return analytic.AvgSWMsg(k, omega), true
		}
		return analytic.AvgSWConn(k), true
	}
	return 0, false
}

func scan(name, format string, dst *int) bool {
	n, err := fmt.Sscanf(name, format, dst)
	return err == nil && n == 1 && fmt.Sprintf(format, *dst) == name
}
