package mobirep

import "mobirep/internal/multi"

// The section 7.2 multi-object extension, re-exported.

// ObjectSet is a set of object ids (0-based, up to 64), e.g. the objects a
// joint read touches.
type ObjectSet = multi.Mask

// NewObjectSet returns the set containing the given ids.
func NewObjectSet(ids ...int) ObjectSet { return multi.NewMask(ids...) }

// OpClass identifies a request class: kind plus exact object set.
type OpClass = multi.Class

// MultiOp is one multi-object request.
type MultiOp = multi.Op

// Multi-object request kinds.
const (
	// MultiRead is a (possibly joint) read at the mobile computer.
	MultiRead = multi.Read
	// MultiWrite is a (possibly joint) write at the stationary computer.
	MultiWrite = multi.Write
)

// FreqTable maps request classes to relative frequencies.
type FreqTable = multi.FreqTable

// MultiCostModel prices one multi-object operation under an allocation.
type MultiCostModel = multi.CostModel

// MultiConnModel returns the connection model generalized to joint
// operations.
func MultiConnModel() MultiCostModel { return multi.ConnCost{} }

// MultiMsgModel returns the message model generalized to joint operations.
func MultiMsgModel(omega float64) MultiCostModel { return multi.MsgCost{Omega: omega} }

// MultiExpectedCost returns the expected cost per operation of caching
// exactly alloc at the MC — the section 7.2 formula.
func MultiExpectedCost(f FreqTable, alloc ObjectSet, m MultiCostModel) float64 {
	return multi.ExpectedCost(f, alloc, m)
}

// OptimalStaticAllocation enumerates all allocations over n objects and
// returns the cheapest with its expected cost (n <= 24).
func OptimalStaticAllocation(f FreqTable, n int, m MultiCostModel) (ObjectSet, float64) {
	return multi.OptimalStatic(f, n, m)
}

// GreedyAllocation approximates the optimum with multi-start local search,
// for object counts beyond enumeration.
func GreedyAllocation(f FreqTable, n int, m MultiCostModel) (ObjectSet, float64) {
	return multi.Greedy(f, n, m)
}

// DynamicMulti is the window-based dynamic multi-object method: it
// estimates class frequencies from the last k operations and re-solves
// every recompute operations.
type DynamicMulti = multi.Dynamic

// NewDynamicMulti builds the dynamic allocator over n objects.
func NewDynamicMulti(n, k, recompute int, m MultiCostModel) *DynamicMulti {
	return multi.NewDynamic(n, k, recompute, m)
}
