package mobirep

import (
	"math"
	"testing"
)

// The facade tests double as compileable documentation: each exercises a
// public-API workflow end to end.

func TestFacadePolicyAndCost(t *testing.T) {
	s, err := ParseSchedule("rrwrw")
	if err != nil {
		t.Fatal(err)
	}
	steps := RunPolicy(NewSW(3), s)
	if len(steps) != 5 {
		t.Fatalf("steps = %d", len(steps))
	}
	conn := TotalCost(ConnectionModel(), steps)
	msg := TotalCost(MessageModel(0), steps)
	if conn <= 0 || msg <= 0 {
		t.Fatalf("costs: conn=%v msg=%v", conn, msg)
	}
	for _, mk := range []func() Policy{NewST1, NewST2, func() Policy { return NewT1(3) }, func() Policy { return NewT2(3) }} {
		p := mk()
		p.Apply(Read)
		p.Reset()
	}
}

func TestFacadeSimulationMatchesTheory(t *testing.T) {
	sum := EstimateExpected(func() Policy { return NewSW(5) }, MessageModel(0.5),
		ExpectedOpts{Theta: 0.4, Ops: 30000, Trials: 4, Seed: 3})
	want := ExpSWMsg(5, 0.4, 0.5)
	if math.Abs(sum.Mean()-want) > 0.01 {
		t.Fatalf("measured %v vs theory %v", sum.Mean(), want)
	}
}

func TestFacadeAverage(t *testing.T) {
	sum := EstimateAverage(func() Policy { return NewSW(9) }, ConnectionModel(),
		AverageOpts{Periods: 100, OpsPerPeriod: 200, Trials: 4, Seed: 5})
	if math.Abs(sum.Mean()-AvgSWConn(9)) > 0.02 {
		t.Fatalf("measured %v vs theory %v", sum.Mean(), AvgSWConn(9))
	}
}

func TestFacadeWorkloadsAndOptimal(t *testing.T) {
	rng := NewRNG(7)
	s := BernoulliSchedule(rng, 0.5, 1000)
	if OptimalCost(s) <= 0 {
		t.Fatal("mixed schedule should have positive offline cost")
	}
	opt, states := OptimalTrace(s)
	if len(states) != len(s) || opt != OptimalCost(s) {
		t.Fatal("trace inconsistent with cost")
	}
	timed := PoissonSchedule(rng, 1, 1, 100)
	if len(timed) != 100 {
		t.Fatalf("timed = %d", len(timed))
	}
	drift, thetas := DriftingSchedule(rng, 10, 50)
	if len(drift) != 500 || len(thetas) != 10 {
		t.Fatal("drifting shape wrong")
	}
}

func TestFacadeCompetitive(t *testing.T) {
	res := MeasureRatio(NewSW(3), ConnectionModel(), SWkAdversary(3, 200))
	if res.Ratio < 3.9 || res.Ratio > 4.1 {
		t.Fatalf("ratio = %v, want ~4", res.Ratio)
	}
	res = MeasureRatio(NewSW(1), MessageModel(0.5), SW1Adversary(200))
	if math.Abs(res.Ratio-CompetitiveSW1Msg(0.5)) > 0.05 {
		t.Fatalf("ratio = %v", res.Ratio)
	}
}

func TestFacadeAnalytics(t *testing.T) {
	if BestExpectedMsg(0.9, 0.5) != AlgST1 {
		t.Fatal("high theta should favor ST1")
	}
	if BestExpectedMsg(0.1, 0.5) != AlgST2 {
		t.Fatal("low theta should favor ST2")
	}
	if BestExpectedConn(0.3) != AlgST2 {
		t.Fatal("connection dominance wrong")
	}
	if MinOddKBeatingSW1(0.8) != 7 {
		t.Fatal("threshold wrong")
	}
	if PiK(3, 0.5) != 0.5 {
		t.Fatal("pi_k symmetric point wrong")
	}
	if ExpST1Conn(0.3) != 0.7 || ExpST2Conn(0.3) != 0.3 {
		t.Fatal("static conn formulas wrong")
	}
	if ExpST1Msg(0, 0.5) != 1.5 || ExpST2Msg(0.4) != 0.4 {
		t.Fatal("static msg formulas wrong")
	}
	if ExpSW1Msg(0.5, 0.5) != 0.5 {
		t.Fatal("SW1 formula wrong")
	}
	if ExpSWConn(1, 0.5) != 0.5 {
		t.Fatal("SW conn formula wrong")
	}
	if ExpT1Conn(1, 0.5) != 0.5 || ExpT2Conn(1, 0.5) != 0.5 {
		t.Fatal("T formulas wrong")
	}
	if CompetitiveSWConn(9) != 10 || CompetitiveSWMsg(9, 0) != 10 {
		t.Fatal("competitive factors wrong")
	}
	if AvgSW1Msg(0.5) != (1+2*0.5)/6 || AvgSWMsg(1, 0.5) != AvgSW1Msg(0.5) {
		t.Fatal("avg msg formulas wrong")
	}
}

func TestRecommendWindow(t *testing.T) {
	if k := RecommendWindow(0.10); k != 9 {
		t.Fatalf("RecommendWindow(0.10) = %d, want 9", k)
	}
	if k := RecommendWindow(0.06); k != 15 {
		t.Fatalf("RecommendWindow(0.06) = %d, want 15", k)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad slack should panic")
		}
	}()
	RecommendWindow(0)
}

func TestFacadeDistributed(t *testing.T) {
	a, b := NewMemPair()
	srv, err := NewServer(NewStore(), SWMode(3))
	if err != nil {
		t.Fatal(err)
	}
	serverMeter := srv.Attach(a).Meter()
	cli, err := NewClient(b, SWMode(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Write("price", []byte("101.5")); err != nil {
		t.Fatal(err)
	}
	it, err := cli.Read("price")
	if err != nil {
		t.Fatal(err)
	}
	if string(it.Value) != "101.5" {
		t.Fatalf("read %q", it.Value)
	}
	cli.Read("price") // second read allocates under SW3
	if !cli.HasCopy("price") {
		t.Fatal("no copy after read majority")
	}
	total := serverMeter.Snapshot().Add(cli.Meter().Snapshot())
	if total.DataMsgs != 2 || total.ControlMsgs != 2 {
		t.Fatalf("traffic = %+v", total)
	}
}

func TestFacadeMultiObject(t *testing.T) {
	x, y := NewObjectSet(0), NewObjectSet(1)
	f := FreqTable{
		{Kind: MultiRead, Objects: x}:  9,
		{Kind: MultiWrite, Objects: x}: 1,
		{Kind: MultiRead, Objects: y}:  1,
		{Kind: MultiWrite, Objects: y}: 9,
	}
	alloc, cost := OptimalStaticAllocation(f, 2, MultiConnModel())
	if alloc != x {
		t.Fatalf("alloc = %v", alloc)
	}
	if g, gc := GreedyAllocation(f, 2, MultiConnModel()); g != alloc || gc != cost {
		t.Fatal("greedy disagrees on separable instance")
	}
	if MultiExpectedCost(f, alloc, MultiMsgModel(0.5)) <= 0 {
		t.Fatal("message-model cost should be positive")
	}
	dyn := NewDynamicMulti(2, 50, 10, MultiConnModel())
	for i := 0; i < 200; i++ {
		dyn.Apply(MultiOp{Kind: MultiRead, Objects: x})
	}
	if dyn.Alloc() != x {
		t.Fatalf("dynamic alloc = %v", dyn.Alloc())
	}
}
