package mobirep

import (
	"mobirep/internal/offline"
	"mobirep/internal/sim"
	"mobirep/internal/stats"
	"mobirep/internal/workload"
)

// Simulation, workload generation and competitive analysis, re-exported
// from the implementation packages.

// Factory builds a fresh policy for one simulation trial.
type Factory = sim.Factory

// SimResult summarizes one schedule replay.
type SimResult = sim.Result

// ExpectedOpts configures EstimateExpected.
type ExpectedOpts = sim.ExpectedOpts

// AverageOpts configures EstimateAverage.
type AverageOpts = sim.AverageOpts

// Summary carries mean/CI statistics over simulation trials.
type Summary = stats.Summary

// Replay runs a schedule through a policy under a cost model, skipping the
// first warmup requests in the accounting.
func Replay(p Policy, m CostModel, s Schedule, warmup int) SimResult {
	return sim.Replay(p, m, s, warmup)
}

// EstimateExpected measures the steady-state expected cost per request at
// a fixed theta (i.i.d. Bernoulli requests).
func EstimateExpected(f Factory, m CostModel, opts ExpectedOpts) Summary {
	return sim.EstimateExpected(f, m, opts)
}

// EstimateAverage measures the average expected cost under the section 3
// period model: theta is redrawn uniformly per period.
func EstimateAverage(f Factory, m CostModel, opts AverageOpts) Summary {
	return sim.EstimateAverage(f, m, opts)
}

// ParsePolicy builds a policy factory from a name such as "SW9" or "ST1".
func ParsePolicy(name string) (Factory, error) { return sim.ParsePolicy(name) }

// RNG is a deterministic random number generator for workloads.
type RNG = stats.RNG

// NewRNG returns a seeded generator.
func NewRNG(seed uint64) *RNG { return stats.NewRNG(seed) }

// BernoulliSchedule returns n requests, each independently a write with
// probability theta — the per-request view of the paper's Poisson model.
func BernoulliSchedule(rng *RNG, theta float64, n int) Schedule {
	return workload.Bernoulli(rng, theta, n)
}

// TimedOp is a request with its Poisson arrival time.
type TimedOp = workload.TimedOp

// PoissonSchedule samples the paper's workload directly: reads at rate
// lambdaR, writes at rate lambdaW, merged in time order.
func PoissonSchedule(rng *RNG, lambdaR, lambdaW float64, n int) []TimedOp {
	return workload.PoissonMerged(rng, lambdaR, lambdaW, n)
}

// DriftingSchedule samples the period model behind the average expected
// cost: each of the periods draws theta ~ U(0,1).
func DriftingSchedule(rng *RNG, periods, opsPerPeriod int) (Schedule, []float64) {
	return workload.Drifting(rng, periods, opsPerPeriod)
}

// OptimalCost returns the ideal offline algorithm's cost on a schedule —
// the denominator of the paper's competitive ratios.
func OptimalCost(s Schedule) float64 { return offline.Cost(s, offline.Ideal()) }

// OptimalTrace additionally returns one optimal allocation sequence:
// states[i] says whether the MC holds a copy after request i.
func OptimalTrace(s Schedule) (float64, []bool) { return offline.Trace(s, offline.Ideal()) }

// RatioResult reports a competitive-ratio measurement.
type RatioResult = workload.RatioResult

// MeasureRatio replays a schedule through a policy and compares with the
// ideal offline cost.
func MeasureRatio(p Policy, m CostModel, s Schedule) RatioResult {
	return workload.MeasureRatio(p, m, s)
}

// SWkAdversary returns the schedule family achieving SWk's tight
// competitive ratio (Theorems 4 and 12).
func SWkAdversary(k, cycles int) Schedule { return workload.SWkAdversary(k, cycles) }

// SW1Adversary returns the family achieving SW1's tight ratio 1+2omega
// (Theorem 11).
func SW1Adversary(cycles int) Schedule { return workload.SW1Adversary(cycles) }

// BurstyConfig parametrizes the two-regime Markov-modulated workload.
type BurstyConfig = workload.BurstyConfig

// BurstySchedule samples n requests whose write probability jumps between
// two regimes — the bursty workload the extension experiments study. The
// second result gives the regime in force at each request.
func BurstySchedule(rng *RNG, cfg BurstyConfig, n int) (Schedule, []uint8) {
	return workload.Bursty(rng, cfg, n)
}

// Comparison is a hindsight ranking of policies on one schedule.
type Comparison = sim.Comparison

// Compare replays a schedule through every candidate policy and ranks
// them by total cost, anchored against the ideal offline optimum.
func Compare(candidates []Factory, m CostModel, s Schedule) Comparison {
	return sim.Compare(candidates, m, s)
}

// BestWindow returns the window size among ks that would have cost least
// on the schedule — the hindsight tuning oracle.
func BestWindow(ks []int, m CostModel, s Schedule) (int, float64) {
	return sim.BestWindow(ks, m, s)
}
