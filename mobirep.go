// Package mobirep is a Go implementation of the data allocation algorithms
// of Huang, Sistla and Wolfson, "Data Replication for Mobile Computers"
// (ACM SIGMOD 1994), together with everything needed to reproduce the
// paper's analysis: the two communication cost models, a Monte-Carlo
// simulator, the closed-form expected/average cost formulas, the offline
// optimal comparator used for competitive analysis, the multi-object
// extension, and a real distributed client/server protocol over in-memory
// or TCP transports.
//
// The problem: a mobile computer (MC) reads a data item whose master copy
// lives on a stationary computer (SC); the SC also writes the item.
// Wireless traffic costs money, so the MC should hold a copy exactly when
// reads dominate writes. An allocation Policy decides this online.
//
// Quick start:
//
//	p := mobirep.NewSW(9)                    // sliding window, k = 9
//	m := mobirep.MessageModel(0.5)           // control msgs cost 0.5
//	res := mobirep.EstimateExpected(func() mobirep.Policy { return mobirep.NewSW(9) },
//	    m, mobirep.ExpectedOpts{Theta: 0.3, Ops: 100_000, Seed: 1})
//	fmt.Printf("measured %.4f, theory %.4f\n",
//	    res.Mean(), mobirep.ExpSWMsg(9, 0.3, 0.5))
//	_ = p
//
// The package is a facade over the implementation packages; every type
// here is an alias, so values flow freely between the facade and any
// deeper API.
package mobirep

import (
	"mobirep/internal/core"
	"mobirep/internal/cost"
	"mobirep/internal/sched"
)

// Op is one relevant request: a read issued at the mobile computer or a
// write issued at the stationary computer.
type Op = sched.Op

// Request kinds.
const (
	// Read is a read at the mobile computer.
	Read = sched.Read
	// Write is a write at the stationary computer.
	Write = sched.Write
)

// Schedule is a finite sequence of relevant requests.
type Schedule = sched.Schedule

// ParseSchedule parses compact schedule notation such as "rwrrw".
func ParseSchedule(s string) (Schedule, error) { return sched.Parse(s) }

// Policy is an online data allocation algorithm: it observes the request
// stream and decides whether the MC holds a copy.
type Policy = core.Policy

// Step reports what one request did to the allocation.
type Step = core.Step

// NewST1 returns the static one-copy method: the MC never holds a copy.
func NewST1() Policy { return core.NewST1() }

// NewST2 returns the static two-copies method: the MC always holds a copy.
func NewST2() Policy { return core.NewST2() }

// NewSW returns the sliding-window method SWk (section 4). k must be odd;
// k = 1 gets the paper's delete-request optimization (SW1).
func NewSW(k int) Policy { return core.NewSW(k) }

// NewT1 returns the T1m method of section 7.1: static one-copy made
// (m+1)-competitive.
func NewT1(m int) Policy { return core.NewT1(m) }

// NewT2 returns the symmetric T2m method of section 7.1.
func NewT2(m int) Policy { return core.NewT2(m) }

// CostModel prices one policy step.
type CostModel = cost.Model

// ConnectionModel returns the connection (cellular, per-call) cost model.
func ConnectionModel() CostModel { return cost.NewConnection() }

// MessageModel returns the message (packet, per-message) cost model with
// control/data cost ratio omega in [0, 1].
func MessageModel(omega float64) CostModel { return cost.NewMessage(omega) }

// TotalCost prices a whole step trace under a model.
func TotalCost(m CostModel, steps []Step) float64 { return cost.Total(m, steps) }

// RunPolicy feeds a schedule through a policy and returns the step trace.
func RunPolicy(p Policy, s Schedule) []Step { return core.Run(p, s) }
